#include "gpu/gpu.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "mem/addrmap.hh"
#include "sim/log.hh"

namespace rockcress
{

GpuMachine::GpuMachine(const GpuParams &params)
    : params_(params)
{
    StatScope root(registry_, "gpu.");
    mem_ = std::make_unique<MainMemory>(params_.heapBytes);
    dram_ = std::make_unique<Dram>(16, params_.dramBytesPerCycle,
                                   params_.dramLatency,
                                   root.nested("dram"));
    for (int cu = 0; cu < params_.cus; ++cu) {
        tcp_.push_back(std::make_unique<CacheTags>(
            params_.tcpBytes, params_.tcpWays, params_.lineBytes,
            root.nested("tcp" + std::to_string(cu))));
    }
    tcc_ = std::make_unique<CacheTags>(params_.tccBytes, params_.tccWays,
                                       params_.lineBytes,
                                       root.nested("tcc"));
    llc_ = std::make_unique<CacheTags>(params_.llcBytes, params_.llcWays,
                                       params_.lineBytes,
                                       root.nested("llc"));
    statInstructions_ = root.counter("instructions");
    statWavefronts_ = root.counter("wavefronts");
    statCycles_ = root.counter("cycles");
}

Cycle
GpuMachine::loadLatency(int cu, const std::vector<Addr> &addrs)
{
    std::set<Addr> lines;
    for (Addr a : addrs)
        lines.insert(a - a % params_.lineBytes);
    Cycle worst = 0;
    int idx = 0;
    for (Addr line : lines) {
        Cycle t = params_.tcpHitLatency;
        if (!tcp_[static_cast<size_t>(cu)]->access(line, false).hit) {
            t += params_.tccHitLatency;
            if (!tcc_->access(line, false).hit) {
                t += params_.llcHitLatency;
                if (!llc_->access(line, false).hit) {
                    int channel = static_cast<int>(
                        (line / params_.lineBytes) % 16);
                    Cycle ready = dram_->request(
                        channel, params_.lineBytes, now_);
                    t += ready - now_;
                }
            }
        }
        worst = std::max(worst, t + static_cast<Cycle>(idx));
        ++idx;
    }
    return worst;
}

void
GpuMachine::storeAccess(int cu, const std::vector<Addr> &addrs)
{
    std::set<Addr> lines;
    for (Addr a : addrs)
        lines.insert(a - a % params_.lineBytes);
    for (Addr line : lines) {
        if (!tcp_[static_cast<size_t>(cu)]->access(line, true).hit) {
            if (!tcc_->access(line, true).hit) {
                if (!llc_->access(line, true).hit) {
                    int channel = static_cast<int>(
                        (line / params_.lineBytes) % 16);
                    dram_->request(channel, params_.lineBytes, now_);
                }
            }
        }
    }
}

namespace
{

/** Functional execution of a non-memory, non-branch op on one lane. */
void
execLane(std::array<Word, numArchRegs> &r, const Instruction &i)
{
    auto si = [&](RegIdx reg) {
        return static_cast<std::int32_t>(r[reg]);
    };
    auto fp = [&](RegIdx reg) { return wordToFloat(r[reg]); };
    auto setI = [&](Word v) {
        if (i.rd != regZero)
            r[i.rd] = v;
    };
    auto setF = [&](float v) { r[i.rd] = floatToWord(v); };

    switch (i.op) {
      case Opcode::NOP: break;
      case Opcode::ADD: setI(r[i.rs1] + r[i.rs2]); break;
      case Opcode::SUB: setI(r[i.rs1] - r[i.rs2]); break;
      case Opcode::AND: setI(r[i.rs1] & r[i.rs2]); break;
      case Opcode::OR: setI(r[i.rs1] | r[i.rs2]); break;
      case Opcode::XOR: setI(r[i.rs1] ^ r[i.rs2]); break;
      case Opcode::SLL: setI(r[i.rs1] << (r[i.rs2] & 31)); break;
      case Opcode::SRL: setI(r[i.rs1] >> (r[i.rs2] & 31)); break;
      case Opcode::SRA:
        setI(static_cast<Word>(si(i.rs1) >> (r[i.rs2] & 31)));
        break;
      case Opcode::SLT: setI(si(i.rs1) < si(i.rs2) ? 1 : 0); break;
      case Opcode::SLTU: setI(r[i.rs1] < r[i.rs2] ? 1 : 0); break;
      case Opcode::MUL:
        setI(static_cast<Word>(si(i.rs1) * si(i.rs2)));
        break;
      case Opcode::DIV:
        setI(r[i.rs2] == 0 ? static_cast<Word>(-1)
                           : static_cast<Word>(si(i.rs1) / si(i.rs2)));
        break;
      case Opcode::REM:
        setI(r[i.rs2] == 0 ? r[i.rs1]
                           : static_cast<Word>(si(i.rs1) % si(i.rs2)));
        break;
      case Opcode::ADDI: setI(r[i.rs1] + static_cast<Word>(i.imm));
        break;
      case Opcode::ANDI: setI(r[i.rs1] & static_cast<Word>(i.imm));
        break;
      case Opcode::ORI: setI(r[i.rs1] | static_cast<Word>(i.imm));
        break;
      case Opcode::XORI: setI(r[i.rs1] ^ static_cast<Word>(i.imm));
        break;
      case Opcode::SLLI: setI(r[i.rs1] << i.imm); break;
      case Opcode::SRLI: setI(r[i.rs1] >> i.imm); break;
      case Opcode::SRAI:
        setI(static_cast<Word>(si(i.rs1) >> i.imm));
        break;
      case Opcode::SLTI: setI(si(i.rs1) < i.imm ? 1 : 0); break;
      case Opcode::LUI: setI(static_cast<Word>(i.imm) << 12); break;
      case Opcode::FADD: setF(fp(i.rs1) + fp(i.rs2)); break;
      case Opcode::FSUB: setF(fp(i.rs1) - fp(i.rs2)); break;
      case Opcode::FMUL: setF(fp(i.rs1) * fp(i.rs2)); break;
      case Opcode::FDIV: setF(fp(i.rs1) / fp(i.rs2)); break;
      case Opcode::FSQRT: setF(std::sqrt(fp(i.rs1))); break;
      case Opcode::FMIN: setF(std::fmin(fp(i.rs1), fp(i.rs2))); break;
      case Opcode::FMAX: setF(std::fmax(fp(i.rs1), fp(i.rs2))); break;
      case Opcode::FMADD:
        setF(fp(i.rs1) * fp(i.rs2) + fp(i.rs3));
        break;
      case Opcode::FABS: setF(std::fabs(fp(i.rs1))); break;
      case Opcode::FEQ: setI(fp(i.rs1) == fp(i.rs2) ? 1 : 0); break;
      case Opcode::FLT: setI(fp(i.rs1) < fp(i.rs2) ? 1 : 0); break;
      case Opcode::FLE: setI(fp(i.rs1) <= fp(i.rs2) ? 1 : 0); break;
      case Opcode::FCVT_WS:
        setI(static_cast<Word>(static_cast<std::int32_t>(fp(i.rs1))));
        break;
      case Opcode::FCVT_SW:
        setF(static_cast<float>(si(i.rs1)));
        break;
      case Opcode::FMV_XW: setI(r[i.rs1]); break;
      case Opcode::FMV_WX: r[i.rd] = r[i.rs1]; break;
      default:
        fatal("gpu: unsupported lane opcode ", opcodeName(i.op));
    }
}

bool
evalBranch(const std::array<Word, numArchRegs> &r, const Instruction &i)
{
    auto sa = static_cast<std::int32_t>(r[i.rs1]);
    auto sb = static_cast<std::int32_t>(r[i.rs2]);
    switch (i.op) {
      case Opcode::BEQ: return sa == sb;
      case Opcode::BNE: return sa != sb;
      case Opcode::BLT: return sa < sb;
      case Opcode::BGE: return sa >= sb;
      case Opcode::BLTU: return r[i.rs1] < r[i.rs2];
      case Opcode::BGEU: return r[i.rs1] >= r[i.rs2];
      default: panic("gpu: not a branch");
    }
}

} // namespace

Cycle
GpuMachine::step(Wavefront &wf, int cu)
{
    const Instruction &inst = wf.program->at(wf.pc);
    *statInstructions_ += 1;
    int lanes = static_cast<int>(wf.lanes.size());

    if (inst.op == Opcode::HALT) {
        wf.done = true;
        return params_.valuLatency;
    }

    if (isCondBranch(inst.op)) {
        bool taken = evalBranch(wf.lanes[0], inst);
        for (int l = 1; l < lanes; ++l) {
            if (evalBranch(wf.lanes[static_cast<size_t>(l)], inst) !=
                taken) {
                fatal("gpu: divergent branch at pc ", wf.pc,
                      " (wavefronts must stay uniform; use "
                      "predication)");
            }
        }
        wf.pc = taken ? inst.imm : wf.pc + 1;
        return params_.valuLatency;
    }
    if (inst.op == Opcode::JAL) {
        for (auto &r : wf.lanes) {
            if (inst.rd != regZero)
                r[inst.rd] = static_cast<Word>(wf.pc + 1);
        }
        wf.pc = inst.imm;
        return params_.valuLatency;
    }

    if (inst.op == Opcode::PRED_EQ || inst.op == Opcode::PRED_NEQ) {
        for (int l = 0; l < lanes; ++l) {
            auto &r = wf.lanes[static_cast<size_t>(l)];
            bool eq = r[inst.rs1] == r[inst.rs2];
            wf.pred[static_cast<size_t>(l)] =
                inst.op == Opcode::PRED_EQ ? eq : !eq;
        }
        wf.pc += 1;
        return params_.valuLatency;
    }

    if (inst.op == Opcode::LW || inst.op == Opcode::FLW) {
        std::vector<Addr> addrs;
        for (int l = 0; l < lanes; ++l) {
            if (!wf.pred[static_cast<size_t>(l)])
                continue;
            auto &r = wf.lanes[static_cast<size_t>(l)];
            Addr a = r[inst.rs1] + static_cast<Addr>(inst.imm);
            addrs.push_back(a);
            if (inst.rd != regZero)
                r[inst.rd] = mem_->readWord(a);
        }
        Cycle t = addrs.empty() ? 0 : loadLatency(cu, addrs);
        wf.pc += 1;
        return params_.valuLatency + t;
    }
    if (inst.op == Opcode::SW || inst.op == Opcode::FSW) {
        std::vector<Addr> addrs;
        for (int l = 0; l < lanes; ++l) {
            if (!wf.pred[static_cast<size_t>(l)])
                continue;
            auto &r = wf.lanes[static_cast<size_t>(l)];
            Addr a = r[inst.rs1] + static_cast<Addr>(inst.imm);
            addrs.push_back(a);
            mem_->writeWord(a, r[inst.rs2]);
        }
        if (!addrs.empty())
            storeAccess(cu, addrs);
        wf.pc += 1;
        return params_.valuLatency;
    }

    for (int l = 0; l < lanes; ++l) {
        if (wf.pred[static_cast<size_t>(l)])
            execLane(wf.lanes[static_cast<size_t>(l)], inst);
    }
    wf.pc += 1;
    return params_.valuLatency;
}

void
GpuMachine::runDispatch(const GpuKernelSpec &spec, Cycle max_cycles)
{
    if (spec.threads <= 0)
        return;
    Assembler as("gpu_dispatch");
    spec.emit(as);
    as.halt();
    auto program = std::make_shared<const Program>(as.finish());

    // Kernel-launch overhead: real APU dispatches cost on the order
    // of a microsecond before the first wavefront issues.
    now_ += params_.dispatchOverhead;
    int wf_size = params_.wavefrontSize;
    int num_wf = ceilDiv(spec.threads, wf_size);
    std::deque<Wavefront> pending;
    for (int w = 0; w < num_wf; ++w) {
        Wavefront wf;
        wf.program = program;
        wf.lanes.resize(static_cast<size_t>(wf_size));
        wf.pred.assign(static_cast<size_t>(wf_size), true);
        for (int l = 0; l < wf_size; ++l) {
            wf.lanes[static_cast<size_t>(l)].fill(0);
            int tid = w * wf_size + l;
            // Clamp spilled lanes to the last valid thread: they
            // redundantly recompute one element (threads is normally
            // a multiple of the wavefront size).
            if (tid >= spec.threads)
                tid = spec.threads - 1;
            wf.lanes[static_cast<size_t>(l)][gpuTidReg] =
                static_cast<Word>(tid);
        }
        pending.push_back(std::move(wf));
        *statWavefronts_ += 1;
    }

    // Resident wavefront slots per CU.
    std::vector<std::vector<Wavefront>> resident(
        static_cast<size_t>(params_.cus));
    std::vector<size_t> rr(static_cast<size_t>(params_.cus), 0);

    auto all_done = [&] {
        if (!pending.empty())
            return false;
        for (const auto &slots : resident) {
            if (!slots.empty())
                return false;
        }
        return true;
    };

    Cycle start = now_;
    while (!all_done()) {
        if (now_ - start > max_cycles)
            fatal("gpu: dispatch watchdog tripped");
        for (int cu = 0; cu < params_.cus; ++cu) {
            auto &slots = resident[static_cast<size_t>(cu)];
            // Retire finished wavefronts and refill.
            for (size_t i = 0; i < slots.size();) {
                if (slots[i].done && slots[i].readyAt <= now_) {
                    slots.erase(slots.begin() + static_cast<long>(i));
                } else {
                    ++i;
                }
            }
            while (static_cast<int>(slots.size()) <
                       params_.wavefrontsPerCu &&
                   !pending.empty()) {
                slots.push_back(std::move(pending.front()));
                pending.pop_front();
            }
            // Issue one instruction from one ready wavefront.
            if (slots.empty())
                continue;
            size_t n = slots.size();
            for (size_t k = 0; k < n; ++k) {
                size_t idx = (rr[static_cast<size_t>(cu)] + k) % n;
                Wavefront &wf = slots[idx];
                if (!wf.done && wf.readyAt <= now_) {
                    Cycle cost = step(wf, cu);
                    wf.readyAt = now_ + cost;
                    rr[static_cast<size_t>(cu)] = (idx + 1) % n;
                    break;
                }
            }
        }
        ++now_;
        *statCycles_ += 1;
    }
}

Cycle
GpuMachine::run(const GpuProgram &program, Cycle max_cycles)
{
    Cycle start = now_;
    for (const GpuKernelSpec &spec : program.dispatches)
        runDispatch(spec, max_cycles);
    return now_ - start;
}

} // namespace rockcress
