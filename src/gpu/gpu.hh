/**
 * @file
 * The APU-style GPU comparison model (Section 5.3, Table 1b): four
 * compute units, each with four 16-lane vALUs executing a 64-thread
 * wavefront every four cycles, four resident wavefronts per CU, and
 * a TCP (16 kB per CU) / TCC (256 kB shared) / GPU-LLC (4 MB) cache
 * hierarchy over the same fixed-latency, fixed-bandwidth DRAM as the
 * manycore.
 *
 * Wavefronts execute lane programs in our ISA in lockstep; control
 * flow must be wavefront-uniform (divergence is expressed with the
 * predication instructions, which mask per-lane side effects).
 */

#ifndef ROCKCRESS_GPU_GPU_HH
#define ROCKCRESS_GPU_GPU_HH

#include <deque>
#include <memory>
#include <vector>

#include "kernels/common.hh"
#include "mem/cachetags.hh"
#include "mem/dram.hh"
#include "mem/mainmem.hh"
#include "sim/stats.hh"

namespace rockcress
{

/** GPU configuration (Table 1b). */
struct GpuParams
{
    int cus = 4;
    int wavefrontsPerCu = 4;
    int wavefrontSize = 64;
    Cycle valuLatency = 4;      ///< Wavefront issue occupancy.
    Addr lineBytes = 64;
    Addr tcpBytes = 16 * 1024;  ///< Per-CU L1.
    int tcpWays = 16;
    Cycle tcpHitLatency = 1;
    Addr tccBytes = 256 * 1024; ///< Shared L2.
    int tccWays = 16;
    Cycle tccHitLatency = 2;
    Addr llcBytes = 4 * 1024 * 1024;
    int llcWays = 16;
    Cycle llcHitLatency = 2;
    Cycle dispatchOverhead = 600;  ///< Kernel-launch cost per dispatch.
    Cycle dramLatency = 60;
    double dramBytesPerCycle = 16.0;
    Addr heapBytes = 64u * 1024 * 1024;
};

/** A self-contained GPU machine that runs GpuProgram dispatches. */
class GpuMachine
{
  public:
    explicit GpuMachine(const GpuParams &params = {});

    MainMemory &mem() { return *mem_; }
    const MainMemory &mem() const { return *mem_; }
    StatRegistry &stats() { return registry_; }

    /** Run all dispatches back to back. @return total cycles. */
    Cycle run(const GpuProgram &program, Cycle max_cycles = 500'000'000);

    Cycle cycles() const { return now_; }

  private:
    struct Wavefront
    {
        std::shared_ptr<const Program> program;
        int pc = 0;
        Cycle readyAt = 0;
        bool done = false;
        std::vector<std::array<Word, numArchRegs>> lanes;
        std::vector<bool> pred;
    };

    /** Run one dispatch to completion. */
    void runDispatch(const GpuKernelSpec &spec, Cycle max_cycles);

    /** Execute one instruction across a wavefront; returns its cost. */
    Cycle step(Wavefront &wf, int cu);

    /** Memory access timing through TCP/TCC/LLC/DRAM. */
    Cycle loadLatency(int cu, const std::vector<Addr> &addrs);
    void storeAccess(int cu, const std::vector<Addr> &addrs);

    GpuParams params_;
    StatRegistry registry_;
    std::unique_ptr<MainMemory> mem_;
    std::unique_ptr<Dram> dram_;
    std::vector<std::unique_ptr<CacheTags>> tcp_;  ///< Per CU.
    std::unique_ptr<CacheTags> tcc_;
    std::unique_ptr<CacheTags> llc_;
    Cycle now_ = 0;

    std::uint64_t *statInstructions_;
    std::uint64_t *statWavefronts_;
    std::uint64_t *statCycles_;
};

} // namespace rockcress

#endif // ROCKCRESS_GPU_GPU_HH
