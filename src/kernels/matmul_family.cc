/**
 * @file
 * The matrix-multiply benchmark family: 2mm, 3mm, gemm, syrk, syr2k,
 * plus the correlation/covariance kernels that reduce to symmetric
 * matrix products after centering. Right operands are stored
 * transposed (Table 2's transpose memory optimization); chained
 * products store their result transposed so the next multiply can
 * stream it.
 */

#include <cmath>

#include "kernels/bench_decls.hh"
#include "kernels/emitters.hh"
#include "kernels/gpu_helpers.hh"

namespace rockcress
{

namespace
{

constexpr int MM = 48;  ///< Square matmul dimension.

std::vector<float>
hostTranspose(const std::vector<float> &m, int rows, int cols)
{
    std::vector<float> t(m.size());
    for (int i = 0; i < rows; ++i)
        for (int j = 0; j < cols; ++j)
            t[static_cast<size_t>(j) * rows + i] =
                m[static_cast<size_t>(i) * cols + j];
    return t;
}

/** Host C = alpha * A(n x k) * BT(m x k)^T + beta * C. */
std::vector<float>
hostMatmulT(const std::vector<float> &a, const std::vector<float> &bt,
            const std::vector<float> &c0, int n, int m, int k,
            float alpha = 1.0f, float beta = 0.0f)
{
    std::vector<float> c(static_cast<size_t>(n) * m, 0.0f);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < m; ++j) {
            float s = 0;
            for (int kk = 0; kk < k; ++kk)
                s += a[static_cast<size_t>(i) * k + kk] *
                     bt[static_cast<size_t>(j) * k + kk];
            float prev =
                beta == 0.0f ? 0.0f : c0[static_cast<size_t>(i) * m + j];
            c[static_cast<size_t>(i) * m + j] = alpha * s + beta * prev;
        }
    }
    return c;
}

// --- gemm ---------------------------------------------------------------------

class Gemm final : public Benchmark
{
  public:
    std::string name() const override { return "gemm"; }
    std::string description() const override
    {
        return "Matrix multiply (C = alpha A B + beta C)";
    }
    int kernelCount() const override { return 1; }

    void
    setup(MainMemory &mem, Heap &heap) override
    {
        a_ = randomFloats(static_cast<size_t>(MM) * MM, 51);
        b_ = randomFloats(static_cast<size_t>(MM) * MM, 52);
        c_ = randomFloats(static_cast<size_t>(MM) * MM, 53);
        bt_ = hostTranspose(b_, MM, MM);
        aAddr_ = heap.alloc(MM * MM * 4);
        btAddr_ = heap.alloc(MM * MM * 4);
        cAddr_ = heap.alloc(MM * MM * 4);
        uploadFloats(mem, aAddr_, a_);
        uploadFloats(mem, btAddr_, bt_);
        uploadFloats(mem, cAddr_, c_);
    }

    std::string
    check(const MainMemory &mem) const override
    {
        auto expect =
            hostMatmulT(a_, bt_, c_, MM, MM, MM, alpha_, beta_);
        return compareFloats(expect, downloadFloats(mem, cAddr_,
                                                    expect.size()));
    }

    GpuProgram
    gpuProgram() override
    {
        GpuProgram p;
        p.dispatches.push_back(
            {MM * MM, [this](Assembler &as) {
                 gpuMatmulElem(as, aAddr_, btAddr_, cAddr_, MM, MM,
                               alpha_, beta_);
             }});
        return p;
    }

  protected:
    void
    emit(SpmdBuilder &b) override
    {
        MatmulSpec s;
        s.a = aAddr_;
        s.bt = btAddr_;
        s.c = cAddr_;
        s.n = s.m = s.k = MM;
        s.alpha = alpha_;
        s.beta = beta_;
        emitMatmulPhase(b, s);
    }

  private:
    const float alpha_ = 32412.0f / 32768.0f;
    const float beta_ = 2123.0f / 4096.0f;
    std::vector<float> a_, b_, bt_, c_;
    Addr aAddr_ = 0, btAddr_ = 0, cAddr_ = 0;
};

// --- 2mm: D = A B ; E = D C ------------------------------------------------------

class TwoMm final : public Benchmark
{
  public:
    std::string name() const override { return "2mm"; }
    std::string description() const override
    {
        return "Two matrix multiplies (E = (A B) C)";
    }
    int kernelCount() const override { return 2; }

    void
    setup(MainMemory &mem, Heap &heap) override
    {
        a_ = randomFloats(static_cast<size_t>(MM) * MM, 61);
        b_ = randomFloats(static_cast<size_t>(MM) * MM, 62);
        c_ = randomFloats(static_cast<size_t>(MM) * MM, 63);
        bt_ = hostTranspose(b_, MM, MM);
        ct_ = hostTranspose(c_, MM, MM);
        aAddr_ = heap.alloc(MM * MM * 4);
        btAddr_ = heap.alloc(MM * MM * 4);
        ctAddr_ = heap.alloc(MM * MM * 4);
        dAddr_ = heap.alloc(MM * MM * 4);
        eAddr_ = heap.alloc(MM * MM * 4);
        uploadFloats(mem, aAddr_, a_);
        uploadFloats(mem, btAddr_, bt_);
        uploadFloats(mem, ctAddr_, ct_);
    }

    std::string
    check(const MainMemory &mem) const override
    {
        auto d = hostMatmulT(a_, bt_, {}, MM, MM, MM);
        auto e = hostMatmulT(d, ct_, {}, MM, MM, MM);
        return compareFloats(
            e, downloadFloats(mem, eAddr_, e.size()));
    }

    GpuProgram
    gpuProgram() override
    {
        GpuProgram p;
        p.dispatches.push_back(
            {MM * MM, [this](Assembler &as) {
                 gpuMatmulElem(as, aAddr_, btAddr_, dAddr_, MM, MM);
             }});
        // Second multiply reads D rows and CT rows: E[i][j] =
        // dot(D[i,:], CT[j,:]) since (D C)[i][j] = dot(D[i,:], C[:,j]).
        p.dispatches.push_back(
            {MM * MM, [this](Assembler &as) {
                 gpuMatmulElem(as, dAddr_, ctAddr_, eAddr_, MM, MM);
             }});
        return p;
    }

  protected:
    void
    emit(SpmdBuilder &b) override
    {
        MatmulSpec s1;
        s1.a = aAddr_;
        s1.bt = btAddr_;
        s1.c = dAddr_;
        s1.n = s1.m = s1.k = MM;
        emitMatmulPhase(b, s1);
        MatmulSpec s2 = s1;
        s2.a = dAddr_;
        s2.bt = ctAddr_;
        s2.c = eAddr_;
        emitMatmulPhase(b, s2);
    }

  private:
    std::vector<float> a_, b_, c_, bt_, ct_;
    Addr aAddr_ = 0, btAddr_ = 0, ctAddr_ = 0, dAddr_ = 0, eAddr_ = 0;
};

// --- 3mm: G = (A B) (C D) ---------------------------------------------------------

class ThreeMm final : public Benchmark
{
  public:
    std::string name() const override { return "3mm"; }
    std::string description() const override
    {
        return "Three matrix multiplies (G = (A B)(C D))";
    }
    int kernelCount() const override { return 3; }

    void
    setup(MainMemory &mem, Heap &heap) override
    {
        a_ = randomFloats(static_cast<size_t>(MM) * MM, 71);
        b_ = randomFloats(static_cast<size_t>(MM) * MM, 72);
        c_ = randomFloats(static_cast<size_t>(MM) * MM, 73);
        d_ = randomFloats(static_cast<size_t>(MM) * MM, 74);
        bt_ = hostTranspose(b_, MM, MM);
        dt_ = hostTranspose(d_, MM, MM);
        aAddr_ = heap.alloc(MM * MM * 4);
        btAddr_ = heap.alloc(MM * MM * 4);
        cAddr_ = heap.alloc(MM * MM * 4);
        dtAddr_ = heap.alloc(MM * MM * 4);
        eAddr_ = heap.alloc(MM * MM * 4);
        ftAddr_ = heap.alloc(MM * MM * 4);
        gAddr_ = heap.alloc(MM * MM * 4);
        uploadFloats(mem, aAddr_, a_);
        uploadFloats(mem, btAddr_, bt_);
        uploadFloats(mem, cAddr_, c_);
        uploadFloats(mem, dtAddr_, dt_);
    }

    std::string
    check(const MainMemory &mem) const override
    {
        auto e = hostMatmulT(a_, bt_, {}, MM, MM, MM);   // E = A B
        auto f = hostMatmulT(c_, dt_, {}, MM, MM, MM);   // F = C D
        auto ft = hostTranspose(f, MM, MM);
        auto g = hostMatmulT(e, ft, {}, MM, MM, MM);     // G = E F
        return compareFloats(
            g, downloadFloats(mem, gAddr_, g.size()));
    }

    GpuProgram
    gpuProgram() override
    {
        GpuProgram p;
        p.dispatches.push_back(
            {MM * MM, [this](Assembler &as) {
                 gpuMatmulElem(as, aAddr_, btAddr_, eAddr_, MM, MM);
             }});
        // F is stored transposed by swapping i/j: FT[j][i] =
        // dot(C[j,:] ... ) — emit a plain elem kernel into FT by
        // computing dot(C[i,:], DT[j,:]) and storing at [j*n + i].
        p.dispatches.push_back({MM * MM, [this](Assembler &as) {
            as.li(x(5), MM);
            as.div(x(6), gpuTidReg, x(5));   // i
            as.rem(x(7), gpuTidReg, x(5));   // j
            as.la(x(8), cAddr_);
            emitAffine(as, x(9), x(8), x(6), MM * 4, x(10));
            as.la(x(8), dtAddr_);
            emitAffine(as, x(11), x(8), x(7), MM * 4, x(10));
            emitFZero(as, f(0));
            as.li(x(12), 0);
            as.li(x(13), MM);
            Loop kl(as, x(12), x(13), 4);
            for (int u = 0; u < 4; ++u) {
                as.flw(f(1), x(9), 4 * u);
                as.flw(f(2), x(11), 4 * u);
                as.fmadd(f(0), f(1), f(2), f(0));
            }
            as.addi(x(9), x(9), 16);
            as.addi(x(11), x(11), 16);
            kl.end();
            // Store transposed: FT[j][i].
            as.la(x(8), ftAddr_);
            emitAffine(as, x(14), x(8), x(7), MM * 4, x(10));
            emitAffine(as, x(14), x(14), x(6), 4, x(10));
            as.fsw(f(0), x(14), 0);
        }});
        p.dispatches.push_back(
            {MM * MM, [this](Assembler &as) {
                 gpuMatmulElem(as, eAddr_, ftAddr_, gAddr_, MM, MM);
             }});
        return p;
    }

  protected:
    void
    emit(SpmdBuilder &b) override
    {
        MatmulSpec s1;
        s1.a = aAddr_;
        s1.bt = btAddr_;
        s1.c = eAddr_;
        s1.n = s1.m = s1.k = MM;
        emitMatmulPhase(b, s1);
        MatmulSpec s2 = s1;       // F = C D stored transposed.
        s2.a = cAddr_;
        s2.bt = dtAddr_;
        s2.c = ftAddr_;
        s2.storeTransposed = true;
        emitMatmulPhase(b, s2);
        MatmulSpec s3 = s1;       // G = E F.
        s3.a = eAddr_;
        s3.bt = ftAddr_;
        s3.c = gAddr_;
        emitMatmulPhase(b, s3);
    }

  private:
    std::vector<float> a_, b_, c_, d_, bt_, dt_;
    Addr aAddr_ = 0, btAddr_ = 0, cAddr_ = 0, dtAddr_ = 0, eAddr_ = 0,
         ftAddr_ = 0, gAddr_ = 0;
};

// --- syrk: C = alpha A A^T + beta C ----------------------------------------------

class Syrk final : public Benchmark
{
  public:
    std::string name() const override { return "syrk"; }
    std::string description() const override
    {
        return "Symmetric rank-K update (C = alpha A A^T + beta C)";
    }
    int kernelCount() const override { return 1; }

    void
    setup(MainMemory &mem, Heap &heap) override
    {
        a_ = randomFloats(static_cast<size_t>(MM) * MM, 81);
        c_ = randomFloats(static_cast<size_t>(MM) * MM, 82);
        aAddr_ = heap.alloc(MM * MM * 4);
        cAddr_ = heap.alloc(MM * MM * 4);
        uploadFloats(mem, aAddr_, a_);
        uploadFloats(mem, cAddr_, c_);
    }

    std::string
    check(const MainMemory &mem) const override
    {
        auto expect = hostMatmulT(a_, a_, c_, MM, MM, MM, alpha_, beta_);
        return compareFloats(expect, downloadFloats(mem, cAddr_,
                                                    expect.size()));
    }

    GpuProgram
    gpuProgram() override
    {
        GpuProgram p;
        p.dispatches.push_back(
            {MM * MM, [this](Assembler &as) {
                 gpuMatmulElem(as, aAddr_, aAddr_, cAddr_, MM, MM,
                               alpha_, beta_);
             }});
        return p;
    }

  protected:
    void
    emit(SpmdBuilder &b) override
    {
        MatmulSpec s;
        s.a = aAddr_;
        s.bt = aAddr_;
        s.c = cAddr_;
        s.n = s.m = s.k = MM;
        s.alpha = alpha_;
        s.beta = beta_;
        emitMatmulPhase(b, s);
    }

  private:
    const float alpha_ = 1.5f;
    const float beta_ = 1.25f;
    std::vector<float> a_, c_;
    Addr aAddr_ = 0, cAddr_ = 0;
};

// --- syr2k: C = alpha (A B^T + B A^T) + beta C ------------------------------------

class Syr2k final : public Benchmark
{
  public:
    std::string name() const override { return "syr2k"; }
    std::string description() const override
    {
        return "Symmetric rank-2K update";
    }
    int kernelCount() const override { return 1; }

    void
    setup(MainMemory &mem, Heap &heap) override
    {
        a_ = randomFloats(static_cast<size_t>(MM) * MM, 91);
        b_ = randomFloats(static_cast<size_t>(MM) * MM, 92);
        c_ = randomFloats(static_cast<size_t>(MM) * MM, 93);
        aAddr_ = heap.alloc(MM * MM * 4);
        bAddr_ = heap.alloc(MM * MM * 4);
        cAddr_ = heap.alloc(MM * MM * 4);
        uploadFloats(mem, aAddr_, a_);
        uploadFloats(mem, bAddr_, b_);
        uploadFloats(mem, cAddr_, c_);
    }

    std::string
    check(const MainMemory &mem) const override
    {
        auto c1 = hostMatmulT(a_, b_, c_, MM, MM, MM, alpha_, beta_);
        auto c2 = hostMatmulT(b_, a_, c1, MM, MM, MM, alpha_, 1.0f);
        return compareFloats(
            c2, downloadFloats(mem, cAddr_, c2.size()));
    }

    GpuProgram
    gpuProgram() override
    {
        GpuProgram p;
        p.dispatches.push_back(
            {MM * MM, [this](Assembler &as) {
                 gpuMatmulElem(as, aAddr_, bAddr_, cAddr_, MM, MM,
                               alpha_, beta_);
             }});
        p.dispatches.push_back(
            {MM * MM, [this](Assembler &as) {
                 gpuMatmulElem(as, bAddr_, aAddr_, cAddr_, MM, MM,
                               alpha_, 1.0f);
             }});
        return p;
    }

  protected:
    void
    emit(SpmdBuilder &b) override
    {
        // C[i][j] = alpha (dot(A[i],B[j]) + dot(B[i],A[j])) + beta C.
        MatmulSpec s1;
        s1.a = aAddr_;
        s1.bt = bAddr_;
        s1.c = cAddr_;
        s1.n = s1.m = s1.k = MM;
        s1.alpha = alpha_;
        s1.beta = beta_;
        emitMatmulPhase(b, s1);
        MatmulSpec s2 = s1;
        s2.a = bAddr_;
        s2.bt = aAddr_;
        s2.beta = 1.0f;
        emitMatmulPhase(b, s2);
    }

  private:
    const float alpha_ = 1.1f;
    const float beta_ = 0.9f;
    std::vector<float> a_, b_, c_;
    Addr aAddr_ = 0, bAddr_ = 0, cAddr_ = 0;
};

// --- corr / covar -------------------------------------------------------------------

constexpr int CM = 48;   ///< Variables (rows of the transposed data).
constexpr int CN = 128;  ///< Observations (columns).

/** Shared implementation; corr additionally normalizes by stddev. */
class CorrBase : public Benchmark
{
  public:
    explicit CorrBase(bool correlate) : correlate_(correlate) {}

    int kernelCount() const override { return correlate_ ? 4 : 3; }

    void
    setup(MainMemory &mem, Heap &heap) override
    {
        data_ = randomFloats(static_cast<size_t>(CM) * CN, 101);
        ones_.assign(CN, 1.0f);
        dataAddr_ = heap.alloc(CM * CN * 4);
        onesAddr_ = heap.alloc(CN * 4);
        meanAddr_ = heap.alloc(CM * 4);
        sumsqAddr_ = heap.alloc(CM * 4);
        invstdAddr_ = heap.alloc(CM * 4);
        outAddr_ = heap.alloc(CM * CM * 4);
        partials_ = heap.alloc(CM * 16 * 4);
        uploadFloats(mem, dataAddr_, data_);
        uploadFloats(mem, onesAddr_, ones_);
    }

    std::string
    check(const MainMemory &mem) const override
    {
        // Host reference mirrors the emitted pipeline.
        std::vector<float> d = data_;
        std::vector<float> mean(CM, 0.0f);
        for (int i = 0; i < CM; ++i) {
            for (int k = 0; k < CN; ++k)
                mean[static_cast<size_t>(i)] +=
                    d[static_cast<size_t>(i) * CN + k];
            mean[static_cast<size_t>(i)] /= static_cast<float>(CN);
        }
        for (int i = 0; i < CM; ++i)
            for (int k = 0; k < CN; ++k)
                d[static_cast<size_t>(i) * CN + k] -=
                    mean[static_cast<size_t>(i)];
        if (correlate_) {
            for (int i = 0; i < CM; ++i) {
                float ss = 0;
                for (int k = 0; k < CN; ++k) {
                    float v = d[static_cast<size_t>(i) * CN + k];
                    ss += v * v;
                }
                float inv =
                    1.0f / std::sqrt(ss / static_cast<float>(CN));
                for (int k = 0; k < CN; ++k)
                    d[static_cast<size_t>(i) * CN + k] *= inv;
            }
        }
        float alpha = correlate_ ? 1.0f / static_cast<float>(CN)
                                 : 1.0f / static_cast<float>(CN - 1);
        auto expect = hostMatmulT(d, d, {}, CM, CM, CN, alpha, 0.0f);
        return compareFloats(expect, downloadFloats(mem, outAddr_,
                                                    expect.size()));
    }

    GpuProgram
    gpuProgram() override
    {
        GpuProgram p;
        float inv_n = 1.0f / static_cast<float>(CN);
        p.dispatches.push_back(
            {CM, [this, inv_n](Assembler &as) {
                 gpuDotRow(as, dataAddr_, onesAddr_, meanAddr_, CN,
                           inv_n);
             }});
        // Center (one thread per element).
        p.dispatches.push_back({CM * CN, [this](Assembler &as) {
            as.li(x(5), CN);
            as.div(x(6), gpuTidReg, x(5));   // row
            as.la(x(7), meanAddr_);
            emitAffine(as, x(8), x(7), x(6), 4, x(9));
            as.flw(f(5), x(8), 0);
            as.la(x(7), dataAddr_);
            emitAffine(as, x(8), x(7), gpuTidReg, 4, x(9));
            as.flw(f(0), x(8), 0);
            as.fsub(f(0), f(0), f(5));
            as.fsw(f(0), x(8), 0);
        }});
        if (correlate_) {
            // Sum of squares per row (self-dot, one thread per row).
            p.dispatches.push_back({CM, [this](Assembler &as) {
                as.la(x(5), dataAddr_);
                emitAffine(as, x(6), x(5), gpuTidReg, CN * 4, x(7));
                emitFZero(as, f(0));
                as.li(x(9), 0);
                as.li(x(10), CN);
                Loop kl(as, x(9), x(10), 4);
                for (int u = 0; u < 4; ++u) {
                    as.flw(f(1), x(6), 4 * u);
                    as.fmadd(f(0), f(1), f(1), f(0));
                }
                as.addi(x(6), x(6), 16);
                kl.end();
                as.la(x(5), sumsqAddr_);
                emitAffine(as, x(6), x(5), gpuTidReg, 4, x(7));
                as.fsw(f(0), x(6), 0);
            }});
            p.dispatches.push_back({CM, [this](Assembler &as) {
                as.la(x(5), sumsqAddr_);
                emitAffine(as, x(6), x(5), gpuTidReg, 4, x(7));
                as.flw(f(0), x(6), 0);
                emitFConst(as, f(1), 1.0f / static_cast<float>(CN),
                           x(7));
                as.fmul(f(0), f(0), f(1));
                as.fsqrt(f(0), f(0));
                emitFConst(as, f(2), 1.0f, x(7));
                as.fdiv(f(0), f(2), f(0));
                as.la(x(5), invstdAddr_);
                emitAffine(as, x(6), x(5), gpuTidReg, 4, x(7));
                as.fsw(f(0), x(6), 0);
            }});
            p.dispatches.push_back({CM * CN, [this](Assembler &as) {
                as.li(x(5), CN);
                as.div(x(6), gpuTidReg, x(5));
                as.la(x(7), invstdAddr_);
                emitAffine(as, x(8), x(7), x(6), 4, x(9));
                as.flw(f(6), x(8), 0);
                as.la(x(7), dataAddr_);
                emitAffine(as, x(8), x(7), gpuTidReg, 4, x(9));
                as.flw(f(0), x(8), 0);
                as.fmul(f(0), f(0), f(6));
                as.fsw(f(0), x(8), 0);
            }});
        }
        float alpha = correlate_ ? 1.0f / static_cast<float>(CN)
                                 : 1.0f / static_cast<float>(CN - 1);
        p.dispatches.push_back(
            {CM * CM, [this, alpha](Assembler &as) {
                 gpuMatmulElem(as, dataAddr_, dataAddr_, outAddr_, CM,
                               CN, alpha, 0.0f);
             }});
        return p;
    }

  protected:
    void
    emit(SpmdBuilder &b) override
    {
        // Phase 1: column means (rows of the transposed data).
        MatvecSpec mv;
        mv.mat = dataAddr_;
        mv.vecIn = onesAddr_;
        mv.out = meanAddr_;
        mv.partials = partials_;
        mv.rows = CM;
        mv.cols = CN;
        mv.alpha = 1.0f / static_cast<float>(CN);
        emitMatvecPhase(b, mv);

        // Phase 2: center the data in place.
        RowMapSpec center;
        center.in = dataAddr_;
        center.out = dataAddr_;
        center.sub = meanAddr_;
        center.rows = CM;
        center.cols = CN;
        emitRowMapPhase(b, center);

        if (correlate_) {
            // Phase 3: sum of squares per row (self-dot).
            MatvecSpec ss = mv;
            ss.vecIn = 0;
            ss.out = sumsqAddr_;
            ss.alpha = 1.0f;
            emitMatvecPhase(b, ss);
            // Small phase: invstd[i] = 1/sqrt(sumsq/n).
            b.mimdPhase([this, &b](Assembler &as) {
                int W = b.activeCores();
                as.la(x(5), sumsqAddr_);
                as.la(x(6), invstdAddr_);
                emitFConst(as, f(1), 1.0f / static_cast<float>(CN),
                           x(9));
                emitFConst(as, f(2), 1.0f, x(9));
                as.mv(x(7), rCoreId);
                as.li(x(8), CM);
                Loop l(as, x(7), x(8), W);
                {
                    emitAffine(as, x(10), x(5), x(7), 4, x(9));
                    as.flw(f(0), x(10), 0);
                    as.fmul(f(0), f(0), f(1));
                    as.fsqrt(f(0), f(0));
                    as.fdiv(f(0), f(2), f(0));
                    emitAffine(as, x(10), x(6), x(7), 4, x(9));
                    as.fsw(f(0), x(10), 0);
                }
                l.end();
            });
            // Phase 4: normalize rows.
            RowMapSpec norm;
            norm.in = dataAddr_;
            norm.out = dataAddr_;
            norm.scale = invstdAddr_;
            norm.rows = CM;
            norm.cols = CN;
            emitRowMapPhase(b, norm);
        }

        // Final phase: symmetric product.
        MatmulSpec prod;
        prod.a = dataAddr_;
        prod.bt = dataAddr_;
        prod.c = outAddr_;
        prod.n = prod.m = CM;
        prod.k = CN;
        prod.alpha = correlate_ ? 1.0f / static_cast<float>(CN)
                                : 1.0f / static_cast<float>(CN - 1);
        emitMatmulPhase(b, prod);
    }

    bool correlate_;
    std::vector<float> data_, ones_;
    Addr dataAddr_ = 0, onesAddr_ = 0, meanAddr_ = 0, sumsqAddr_ = 0,
         invstdAddr_ = 0, outAddr_ = 0, partials_ = 0;
};

class Corr final : public CorrBase
{
  public:
    Corr() : CorrBase(true) {}
    std::string name() const override { return "corr"; }
    std::string description() const override
    {
        return "Matrix correlation";
    }
};

class Covar final : public CorrBase
{
  public:
    Covar() : CorrBase(false) {}
    std::string name() const override { return "covar"; }
    std::string description() const override
    {
        return "Matrix covariance";
    }
};

} // namespace

std::unique_ptr<Benchmark> makeGemm() { return std::make_unique<Gemm>(); }
std::unique_ptr<Benchmark> make2mm() { return std::make_unique<TwoMm>(); }
std::unique_ptr<Benchmark>
make3mm()
{
    return std::make_unique<ThreeMm>();
}
std::unique_ptr<Benchmark> makeSyrk() { return std::make_unique<Syrk>(); }
std::unique_ptr<Benchmark>
makeSyr2k()
{
    return std::make_unique<Syr2k>();
}
std::unique_ptr<Benchmark> makeCorr() { return std::make_unique<Corr>(); }
std::unique_ptr<Benchmark>
makeCovar()
{
    return std::make_unique<Covar>();
}

} // namespace rockcress
