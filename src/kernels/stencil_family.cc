/**
 * @file
 * The stencil benchmark family: 2dconv, 3dconv, and fdtd-2d. Rows
 * are dealt per worker (MIMD) or per lane (vector, Single loads,
 * possibly unaligned — the suffix/prefix vload pair of Section
 * 2.3.2). A shared row-stencil emitter covers 2dconv and the three
 * fdtd-2d update kernels; 3dconv layers three plane-frames per
 * output chunk.
 */

#include <cmath>

#include "kernels/bench_decls.hh"
#include "kernels/emitters.hh"
#include "kernels/gpu_helpers.hh"

namespace rockcress
{

namespace
{

/** Donated register holding the frame-region size (non-pow2 wrap). */
constexpr RegIdx rRegion = x(27);

/** One input stream of a row-stencil phase. */
struct StencilStream
{
    Addr base = 0;
    int rowDelta = 0;   ///< Input row = output row + rowDelta.
    int colStart = 0;   ///< First column fetched for chunk 0.
    /** Pointer group: streams sharing a base pointer register (<=4
     * groups). The group pointer sits at row (task + rowBase +
     * groupRowDelta), column 0; the stream is addressed with an
     * immediate offset from it. */
    int group = 0;
    int groupRowDelta = 0;
};

/** Immediate byte offset of stream element idx from its group ptr. */
int
streamOff(const StencilStream &st, int row_words, int idx)
{
    return ((st.rowDelta - st.groupRowDelta) * row_words + st.colStart +
            idx) *
           4;
}

/** Number of pointer groups used by a phase. */
int
numGroupsOf(const std::vector<StencilStream> &streams)
{
    int n = 0;
    for (const StencilStream &st : streams)
        n = std::max(n, st.group + 1);
    return n;
}

/** Loads element `idx` of stream `s` into an fp register. */
using StencilLoad = std::function<void(RegIdx freg, int s, int idx)>;

/** A row-parallel stencil phase. */
struct RowStencilSpec
{
    int tasks = 0;           ///< Output rows; row = task + rowBase.
    int rowBase = 0;
    int rowWords = 0;        ///< Row stride of every grid involved.
    Addr outBase = 0;
    int outColStart = 0;
    int chunkOutputs = 0;    ///< Outputs per frame.
    int chunksPerTask = 0;
    std::vector<StencilStream> streams;  ///< 16 words each per frame.
    /** Emit the computation of output t into f0. */
    std::function<void(Assembler &, const StencilLoad &, int t)> compute;
    /** Hoisted coefficient constants (may clobber f20..f31, x9). */
    std::function<void(Assembler &)> hoist;
};

constexpr int stW = 16;  ///< Stream words per frame.

/** Frames sized to fit the 4 kB scratchpad (>= the 5 hw counters). */
int
stencilFrames(int frame_words)
{
    return frame_words * 8 * 4 <= 3072 ? 8 : 5;
}

void
emitRowStencilMimd(SpmdBuilder &b, const RowStencilSpec &s)
{
    bool pf = b.config().dae;
    int ns = static_cast<int>(s.streams.size());
    int ng = numGroupsOf(s.streams);
    int frame_words = ns * stW;
    const int num_frames = stencilFrames(frame_words);
    // Group pointer registers (<= 4 groups).
    const RegIdx sp[4] = {x(8), x(10), x(11), x(14)};
    if (ng > 4)
        fatal("stencil: more than 4 pointer groups");
    // Base address and row delta per group (first stream wins; all
    // members must share the base).
    Addr gbase[4] = {0, 0, 0, 0};
    int gdelta[4] = {0, 0, 0, 0};
    for (const StencilStream &st : s.streams) {
        if (gbase[st.group] == 0) {
            gbase[st.group] = st.base;
            gdelta[st.group] = st.groupRowDelta;
        }
    }

    b.mimdPhase([&, pf, ns, ng, frame_words](Assembler &as) {
        int W = b.activeCores();
        DaeStreamRegs regs;
        FrameRotator rot(as, regs.off, frame_words * 4, num_frames,
                         rRegion);
        if (pf) {
            as.li(x(9), frame_words | (num_frames << 16));
            as.csrw(Csr::FrameCfg, x(9));
            rot.emitInit();
        }
        if (s.hoist)
            s.hoist(as);
        as.la(x(17), s.outBase);
        as.mv(x(5), rCoreId);
        as.li(x(6), s.tasks);
        Loop rows(as, x(5), x(6), W);
        {
            // Group pointers for this row (column 0 of their row).
            for (int g = 0; g < ng; ++g) {
                as.la(x(9), gbase[g]);
                emitAffine(as, sp[g], x(9), x(5), s.rowWords * 4,
                           x(12));
                emitAddImm(as, sp[g], sp[g],
                           (s.rowBase + gdelta[g]) * s.rowWords * 4,
                           x(12));
            }
            emitAffine(as, x(13), x(17), x(5), s.rowWords * 4, x(12));
            emitAddImm(as, x(13), x(13),
                       (s.rowBase * s.rowWords + s.outColStart) * 4,
                       x(12));
            if (!pf) {
                // Direct loads: same chunk structure, no frames.
                for (int c = 0; c < s.chunksPerTask; ++c) {
                    StencilLoad load = [&](RegIdx fr, int st, int idx) {
                        const StencilStream &str =
                            s.streams[static_cast<size_t>(st)];
                        as.flw(fr, sp[str.group],
                               streamOff(str, s.rowWords, idx));
                    };
                    for (int t = 0; t < s.chunkOutputs; ++t) {
                        s.compute(as, load, t);
                        as.fsw(f(0), x(13), 4 * t);
                    }
                    for (int g = 0; g < ng; ++g)
                        as.addi(sp[g], sp[g], s.chunkOutputs * 4);
                    as.addi(x(13), x(13), s.chunkOutputs * 4);
                }
            } else {
                DaeStreamSpec spec;
                spec.iters = s.chunksPerTask;
                spec.frameBytes = frame_words * 4;
                spec.numFrames = num_frames;
                spec.fill = [&, ns, ng](Assembler &a, RegIdx off) {
                    for (int i = 0; i < ns; ++i) {
                        const StencilStream &str =
                            s.streams[static_cast<size_t>(i)];
                        RegIdx areg = sp[str.group];
                        int aoff = streamOff(str, s.rowWords, 0);
                        if (aoff != 0) {
                            a.addi(x(15), areg, aoff);
                            areg = x(15);
                        }
                        RegIdx oreg = off;
                        if (i > 0) {
                            a.addi(x(16), off, i * stW * 4);
                            oreg = x(16);
                        }
                        a.vload(areg, oreg, 0, stW,
                                VloadVariant::Self);
                    }
                    for (int g = 0; g < ng; ++g)
                        a.addi(sp[g], sp[g], s.chunkOutputs * 4);
                };
                spec.consume = [&](Assembler &a, RegIdx fb) {
                    StencilLoad load = [&](RegIdx fr, int st, int idx) {
                        a.flw(fr, fb, (st * stW + idx) * 4);
                    };
                    for (int t = 0; t < s.chunkOutputs; ++t) {
                        s.compute(a, load, t);
                        a.fsw(f(0), x(13), 4 * t);
                    }
                    a.addi(x(13), x(13), s.chunkOutputs * 4);
                };
                emitMimdStream(as, spec, rot, regs);
            }
        }
        rows.end();
    });
}

void
emitRowStencilVector(SpmdBuilder &b, const RowStencilSpec &s)
{
    const BenchConfig &cfg = b.config();
    int VLEN = cfg.groupSize;
    int G = b.numGroups();
    int ns = static_cast<int>(s.streams.size());
    int ng = numGroupsOf(s.streams);
    int frame_words = ns * stW;
    const int num_frames = stencilFrames(frame_words);
    if (s.tasks % VLEN != 0)
        fatal("stencil: tasks must divide by the group size");
    if (ng > 4)
        fatal("stencil: more than 4 pointer groups");
    Addr gbase[4] = {0, 0, 0, 0};
    int gdelta[4] = {0, 0, 0, 0};
    for (const StencilStream &st : s.streams) {
        if (gbase[st.group] == 0) {
            gbase[st.group] = st.base;
            gdelta[st.group] = st.groupRowDelta;
        }
    }

    Label init = b.declareMicrothread();
    Label nextrow = b.declareMicrothread();
    Label body = b.declareMicrothread();

    b.defineMicrothread(init, [=](Assembler &as) {
        if (s.hoist)
            s.hoist(as);   // May clobber temporaries; run first.
        as.csrr(x(5), Csr::GroupTid);
        as.csrr(x(6), Csr::CoreId);
        as.li(x(7), VLEN + 1);
        as.div(x(6), x(6), x(7));
        emitScale(as, x(9), x(6), VLEN, x(7));
        as.add(x(9), x(9), x(5));          // lane task
        as.li(x(17), G * VLEN);
        as.sub(x(9), x(9), x(17));         // pre-decrement
        as.la(x(16), s.outBase);
        as.li(x(15), s.rowWords * 4);
    });
    b.defineMicrothread(nextrow, [=](Assembler &as) {
        as.add(x(9), x(9), x(17));
        as.mul(x(10), x(9), x(15));
        as.add(x(10), x(16), x(10));
        emitAddImm(as, x(10), x(10),
                   (s.rowBase * s.rowWords + s.outColStart) * 4, x(11));
    });
    b.defineMicrothread(body, [=](Assembler &as) {
        as.frameStart(x(13));
        StencilLoad load = [&](RegIdx fr, int st, int idx) {
            as.flw(fr, x(13), (st * stW + idx) * 4);
        };
        for (int t = 0; t < s.chunkOutputs; ++t) {
            s.compute(as, load, t);
            as.fsw(f(0), x(10), 4 * t);
        }
        as.addi(x(10), x(10), s.chunkOutputs * 4);
        as.remem();
    });

    b.vectorPhase(frame_words, num_frames, [=, &b](Assembler &as) {
        as.vissue(init);
        DaeStreamRegs regs;
        FrameRotator rot(as, regs.off, frame_words * 4, num_frames,
                         rRegion);
        rot.emitInit();
        const RegIdx sp[4] = {x(13), x(14), x(18), x(19)};
        as.mv(x(7), rGroupId);
        as.li(x(8), s.tasks / VLEN);
        Loop chunks(as, x(7), x(8), G);
        {
            as.vissue(nextrow);
            for (int g = 0; g < ng; ++g) {
                as.la(x(9), gbase[g]);
                emitAffine(as, sp[g], x(9), x(7),
                           VLEN * s.rowWords * 4, x(12));
                emitAddImm(as, sp[g], sp[g],
                           (s.rowBase + gdelta[g]) * s.rowWords * 4,
                           x(12));
            }
            DaeStreamSpec spec;
            spec.iters = s.chunksPerTask;
            spec.frameBytes = frame_words * 4;
            spec.numFrames = num_frames;
            spec.bodyMt = body;
            spec.fill = [=, &s](Assembler &a, RegIdx off) {
                for (int i = 0; i < ns; ++i) {
                    const StencilStream &str =
                        s.streams[static_cast<size_t>(i)];
                    for (int l = 0; l < VLEN; ++l) {
                        int aoff = streamOff(str, s.rowWords, 0) +
                                   l * s.rowWords * 4;
                        RegIdx areg = sp[str.group];
                        if (aoff != 0) {
                            emitAddImm(a, x(20), areg, aoff, x(21));
                            areg = x(20);
                        }
                        RegIdx oreg = off;
                        if (i > 0) {
                            a.addi(x(12), off, i * stW * 4);
                            oreg = x(12);
                        }
                        a.vload(areg, oreg, l, stW,
                                VloadVariant::Single);
                    }
                }
                for (int g = 0; g < ng; ++g)
                    a.addi(sp[g], sp[g], s.chunkOutputs * 4);
            };
            emitScalarStream(as, spec, rot, regs);
        }
        chunks.end();
    });
}

void
emitRowStencilPhase(SpmdBuilder &b, const RowStencilSpec &s)
{
    if (b.config().isVector())
        emitRowStencilVector(b, s);
    else
        emitRowStencilMimd(b, s);
}

// --- 2dconv --------------------------------------------------------------------

constexpr int cNI = 66;  ///< Image rows; 64 interior output rows.
constexpr int cNJ = 58;  ///< Image columns; 56 computed per row.
constexpr int cChunk = 14;

const float conv2Coef[3][3] = {{0.2f, -0.3f, 0.4f},
                               {-0.8f, 0.6f, 0.7f},
                               {-0.9f, 0.5f, 0.15f}};

class Conv2d final : public Benchmark
{
  public:
    std::string name() const override { return "2dconv"; }
    std::string description() const override
    {
        return "3x3 filter applied to an image";
    }
    int kernelCount() const override { return 1; }

    void
    setup(MainMemory &mem, Heap &heap) override
    {
        in_ = randomFloats(static_cast<size_t>(cNI) * cNJ, 201);
        inAddr_ = heap.alloc(cNI * cNJ * 4);
        outAddr_ = heap.alloc(cNI * cNJ * 4);
        uploadFloats(mem, inAddr_, in_);
        uploadFloats(mem, outAddr_,
                     std::vector<float>(static_cast<size_t>(cNI) * cNJ,
                                        0.0f));
    }

    std::string
    check(const MainMemory &mem) const override
    {
        std::vector<float> expect(static_cast<size_t>(cNI) * cNJ, 0.0f);
        for (int i = 1; i < cNI - 1; ++i) {
            for (int j = 1; j < 1 + 4 * cChunk; ++j) {
                float acc = 0;
                for (int r = 0; r < 3; ++r)
                    for (int u = 0; u < 3; ++u)
                        acc += conv2Coef[r][u] *
                               in_[static_cast<size_t>(i + r - 1) * cNJ +
                                   (j + u - 1)];
                expect[static_cast<size_t>(i) * cNJ + j] = acc;
            }
        }
        return compareFloats(
            expect, downloadFloats(mem, outAddr_, expect.size()));
    }

    GpuProgram
    gpuProgram() override
    {
        // One thread per output row (64 rows -> one wavefront).
        GpuProgram p;
        p.dispatches.push_back({64, [this](Assembler &as) {
            as.addi(x(5), gpuTidReg, 1);   // row
            as.la(x(6), inAddr_);
            emitAffine(as, x(7), x(6), x(5), cNJ * 4, x(9));
            as.la(x(6), outAddr_);
            emitAffine(as, x(8), x(6), x(5), cNJ * 4, x(9));
            as.addi(x(8), x(8), 4);
            for (int r = 0; r < 3; ++r)
                for (int u = 0; u < 3; ++u)
                    emitFConst(as, f(20 + r * 3 + u), conv2Coef[r][u],
                               x(9));
            as.li(x(10), 0);
            as.li(x(11), 4 * cChunk);
            Loop jl(as, x(10), x(11), 1);
            {
                emitFZero(as, f(0));
                for (int r = 0; r < 3; ++r)
                    for (int u = 0; u < 3; ++u) {
                        as.flw(f(1), x(7), ((r - 1) * cNJ + u) * 4);
                        as.fmadd(f(0), f(1), f(20 + r * 3 + u), f(0));
                    }
                as.fsw(f(0), x(8), 0);
                as.addi(x(7), x(7), 4);
                as.addi(x(8), x(8), 4);
            }
            jl.end();
        }});
        return p;
    }

  protected:
    void
    emit(SpmdBuilder &b) override
    {
        RowStencilSpec s;
        s.tasks = cNI - 2;
        s.rowBase = 1;
        s.rowWords = cNJ;
        s.outBase = outAddr_;
        s.outColStart = 1;
        s.chunkOutputs = cChunk;
        s.chunksPerTask = 4;
        s.streams = {{inAddr_, -1, 0}, {inAddr_, 0, 0}, {inAddr_, 1, 0}};
        s.hoist = [](Assembler &as) {
            for (int r = 0; r < 3; ++r)
                for (int u = 0; u < 3; ++u)
                    emitFConst(as, f(20 + r * 3 + u), conv2Coef[r][u],
                               x(9));
        };
        s.compute = [](Assembler &as, const StencilLoad &load, int t) {
            emitFZero(as, f(0));
            for (int r = 0; r < 3; ++r)
                for (int u = 0; u < 3; ++u) {
                    load(f(1), r, t + u);
                    as.fmadd(f(0), f(1), f(20 + r * 3 + u), f(0));
                }
        };
        emitRowStencilPhase(b, s);
    }

  private:
    std::vector<float> in_;
    Addr inAddr_ = 0, outAddr_ = 0;
};

// --- fdtd-2d --------------------------------------------------------------------

constexpr int fNX = 64;   ///< 65 rows allocated (padding row).
constexpr int fNY = 64;
constexpr int fTmax = 4;

class Fdtd2d final : public Benchmark
{
  public:
    std::string name() const override { return "fdtd-2d"; }
    std::string description() const override
    {
        return "Finite-difference time-domain";
    }
    int kernelCount() const override { return 3; }

    void
    setup(MainMemory &mem, Heap &heap) override
    {
        size_t cells = static_cast<size_t>(fNX + 1) * fNY;
        ex_ = randomFloats(cells, 211);
        ey_ = randomFloats(cells, 212);
        hz_ = randomFloats(cells, 213);
        fict_ = randomFloats(fTmax, 214);
        exAddr_ = heap.alloc((fNX + 1) * fNY * 4);
        eyAddr_ = heap.alloc((fNX + 1) * fNY * 4);
        hzAddr_ = heap.alloc((fNX + 1) * fNY * 4);
        uploadFloats(mem, exAddr_, ex_);
        uploadFloats(mem, eyAddr_, ey_);
        uploadFloats(mem, hzAddr_, hz_);
    }

    std::string
    check(const MainMemory &mem) const override
    {
        auto at = [](std::vector<float> &g, int i, int j) -> float & {
            return g[static_cast<size_t>(i) * fNY + j];
        };
        std::vector<float> ex = ex_, ey = ey_, hz = hz_;
        for (int t = 0; t < fTmax; ++t) {
            for (int j = 0; j < fNY; ++j)
                at(ey, 0, j) = fict_[static_cast<size_t>(t)];
            for (int i = 1; i < fNX + 1; ++i)
                for (int j = 0; j < fNY; ++j)
                    at(ey, i, j) -=
                        0.5f * (at(hz, i, j) - at(hz, i - 1, j));
            for (int i = 0; i < fNX; ++i)
                for (int j = 1; j < 1 + 4 * 14; ++j)
                    at(ex, i, j) -=
                        0.5f * (at(hz, i, j) - at(hz, i, j - 1));
            for (int i = 0; i < fNX; ++i)
                for (int j = 0; j < 4 * 14; ++j)
                    at(hz, i, j) -=
                        0.7f * (at(ex, i, j + 1) - at(ex, i, j) +
                                at(ey, i + 1, j) - at(ey, i, j));
        }
        std::string e = compareFloats(
            hz, downloadFloats(mem, hzAddr_, hz.size()));
        if (!e.empty())
            return "hz: " + e;
        e = compareFloats(ey,
                          downloadFloats(mem, eyAddr_, ey.size()));
        return e.empty() ? "" : "ey: " + e;
    }

    GpuProgram
    gpuProgram() override
    {
        GpuProgram p;
        for (int t = 0; t < fTmax; ++t) {
            // ey rows (row 0 handled by lane 0's special case via
            // a separate dispatch writing the fict row).
            p.dispatches.push_back({fNY, [this, t](Assembler &as) {
                as.la(x(5), eyAddr_);
                emitAffine(as, x(6), x(5), gpuTidReg, 4, x(7));
                emitFConst(as, f(0), fict_[static_cast<size_t>(t)],
                           x(7));
                as.fsw(f(0), x(6), 0);
            }});
            p.dispatches.push_back({fNX, [this](Assembler &as) {
                gpuRowUpdate(as, 1);   // ey
            }});
            p.dispatches.push_back({fNX, [this](Assembler &as) {
                gpuRowUpdate(as, 2);   // ex
            }});
            p.dispatches.push_back({fNX, [this](Assembler &as) {
                gpuRowUpdate(as, 3);   // hz
            }});
        }
        return p;
    }

  protected:
    void
    emit(SpmdBuilder &b) override
    {
        for (int t = 0; t < fTmax; ++t) {
            // Row 0 of ey gets the excitation value.
            float fict = fict_[static_cast<size_t>(t)];
            b.mimdPhase([&b, fict, this](Assembler &as) {
                int W = b.activeCores();
                as.la(x(5), eyAddr_);
                emitFConst(as, f(0), fict, x(9));
                as.mv(x(6), rCoreId);
                as.li(x(7), fNY);
                Loop l(as, x(6), x(7), W);
                {
                    emitAffine(as, x(8), x(5), x(6), 4, x(9));
                    as.fsw(f(0), x(8), 0);
                }
                l.end();
            });

            // ey update: rows 1..NX, full 64-column rows.
            RowStencilSpec ey;
            ey.tasks = fNX;
            ey.rowBase = 1;
            ey.rowWords = fNY;
            ey.outBase = eyAddr_;
            ey.outColStart = 0;
            ey.chunkOutputs = 16;
            ey.chunksPerTask = fNY / 16;
            ey.streams = {{eyAddr_, 0, 0, 0, 0},
                          {hzAddr_, 0, 0, 1, 0},
                          {hzAddr_, -1, 0, 1, 0}};
            ey.hoist = [](Assembler &as) {
                emitFConst(as, f(20), -0.5f, x(9));
            };
            ey.compute = [](Assembler &as, const StencilLoad &load,
                            int tt) {
                load(f(1), 0, tt);
                load(f(2), 1, tt);
                load(f(3), 2, tt);
                as.fsub(f(2), f(2), f(3));
                as.fmadd(f(0), f(2), f(20), f(1));
            };
            emitRowStencilPhase(b, ey);

            // ex update: rows 0..NX-1, columns 1..57.
            RowStencilSpec ex;
            ex.tasks = fNX;
            ex.rowBase = 0;
            ex.rowWords = fNY;
            ex.outBase = exAddr_;
            ex.outColStart = 1;
            ex.chunkOutputs = 14;
            ex.chunksPerTask = 4;
            ex.streams = {{exAddr_, 0, 1, 0, 0},
                          {hzAddr_, 0, 0, 1, 0}};
            ex.hoist = [](Assembler &as) {
                emitFConst(as, f(20), -0.5f, x(9));
            };
            ex.compute = [](Assembler &as, const StencilLoad &load,
                            int tt) {
                load(f(1), 0, tt);
                load(f(2), 1, tt + 1);
                load(f(3), 1, tt);
                as.fsub(f(2), f(2), f(3));
                as.fmadd(f(0), f(2), f(20), f(1));
            };
            emitRowStencilPhase(b, ex);

            // hz update: rows 0..NX-1, columns 0..55.
            RowStencilSpec hz;
            hz.tasks = fNX;
            hz.rowBase = 0;
            hz.rowWords = fNY;
            hz.outBase = hzAddr_;
            hz.outColStart = 0;
            hz.chunkOutputs = 14;
            hz.chunksPerTask = 4;
            hz.streams = {{hzAddr_, 0, 0, 0, 0},
                          {exAddr_, 0, 0, 1, 0},
                          {eyAddr_, 0, 0, 2, 0},
                          {eyAddr_, 1, 0, 2, 0}};
            hz.hoist = [](Assembler &as) {
                emitFConst(as, f(20), -0.7f, x(9));
            };
            hz.compute = [](Assembler &as, const StencilLoad &load,
                            int tt) {
                load(f(1), 0, tt);    // hz
                load(f(2), 1, tt + 1);  // ex[j+1]
                load(f(3), 1, tt);      // ex[j]
                as.fsub(f(2), f(2), f(3));
                load(f(4), 3, tt);      // ey[i+1][j]
                load(f(3), 2, tt);      // ey[i][j]
                as.fsub(f(4), f(4), f(3));
                as.fadd(f(2), f(2), f(4));
                as.fmadd(f(0), f(2), f(20), f(1));
            };
            emitRowStencilPhase(b, hz);
        }
    }

  private:
    /** GPU: one thread per row for the three updates. */
    void
    gpuRowUpdate(Assembler &as, int which)
    {
        emitFConst(as, f(20), which == 3 ? -0.7f : -0.5f, x(9));
        // Row index: ey uses rows 1.., others 0..
        if (which == 1)
            as.addi(x(5), gpuTidReg, 1);
        else
            as.mv(x(5), gpuTidReg);
        as.la(x(6), exAddr_);
        emitAffine(as, x(10), x(6), x(5), fNY * 4, x(9));
        as.la(x(6), eyAddr_);
        emitAffine(as, x(11), x(6), x(5), fNY * 4, x(9));
        as.la(x(6), hzAddr_);
        emitAffine(as, x(12), x(6), x(5), fNY * 4, x(9));
        as.li(x(7), 0);
        as.li(x(8), which == 1 ? fNY : 4 * 14);
        Loop jl(as, x(7), x(8), 1);
        {
            if (which == 1) {
                as.flw(f(1), x(11), 0);
                as.flw(f(2), x(12), 0);
                as.flw(f(3), x(12), -static_cast<int>(fNY) * 4);
                as.fsub(f(2), f(2), f(3));
                as.fmadd(f(0), f(2), f(20), f(1));
                as.fsw(f(0), x(11), 0);
            } else if (which == 2) {
                as.flw(f(1), x(10), 4);
                as.flw(f(2), x(12), 4);
                as.flw(f(3), x(12), 0);
                as.fsub(f(2), f(2), f(3));
                as.fmadd(f(0), f(2), f(20), f(1));
                as.fsw(f(0), x(10), 4);
            } else {
                as.flw(f(1), x(12), 0);
                as.flw(f(2), x(10), 4);
                as.flw(f(3), x(10), 0);
                as.fsub(f(2), f(2), f(3));
                as.flw(f(4), x(11), fNY * 4);
                as.flw(f(3), x(11), 0);
                as.fsub(f(4), f(4), f(3));
                as.fadd(f(2), f(2), f(4));
                as.fmadd(f(0), f(2), f(20), f(1));
                as.fsw(f(0), x(12), 0);
            }
            as.addi(x(10), x(10), 4);
            as.addi(x(11), x(11), 4);
            as.addi(x(12), x(12), 4);
        }
        jl.end();
    }

    std::vector<float> ex_, ey_, hz_, fict_;
    Addr exAddr_ = 0, eyAddr_ = 0, hzAddr_ = 0;
};

// --- 3dconv --------------------------------------------------------------------

constexpr int dNI = 18, dNJ = 18, dNK = 30;
constexpr int dChunk = 14;
constexpr int dInterior = 16;   ///< Interior i and j extents.

float
conv3Coef(int di, int dj, int dk)
{
    // Deterministic small coefficients.
    return (static_cast<float>((di + 1) * 9 + (dj + 1) * 3 + dk + 1) -
            13.0f) /
           16.0f;
}

class Conv3d final : public Benchmark
{
  public:
    std::string name() const override { return "3dconv"; }
    std::string description() const override
    {
        return "3x3x3 filter applied to a volume";
    }
    int kernelCount() const override { return 1; }

    void
    setup(MainMemory &mem, Heap &heap) override
    {
        size_t cells = static_cast<size_t>(dNI) * dNJ * dNK;
        in_ = randomFloats(cells, 221);
        inAddr_ = heap.alloc(dNI * dNJ * dNK * 4);
        outAddr_ = heap.alloc(dNI * dNJ * dNK * 4);
        uploadFloats(mem, inAddr_, in_);
        uploadFloats(mem, outAddr_,
                     std::vector<float>(cells, 0.0f));
    }

    std::string
    check(const MainMemory &mem) const override
    {
        // Only interior cells are specified; halo rows written by the
        // padded task range hold unspecified values and are skipped.
        auto got = downloadFloats(mem, outAddr_,
                                  static_cast<size_t>(dNI) * dNJ * dNK);
        auto at = [this](int i, int j, int k) {
            return in_[(static_cast<size_t>(i) * dNJ + j) * dNK + k];
        };
        std::vector<float> expect, actual;
        for (int i = 1; i <= dInterior; ++i)
            for (int j = 1; j <= dInterior; ++j)
                for (int k = 1; k < 1 + 2 * dChunk; ++k) {
                    float acc = 0;
                    for (int di = -1; di <= 1; ++di)
                        for (int dj = -1; dj <= 1; ++dj)
                            for (int dk = -1; dk <= 1; ++dk)
                                acc += conv3Coef(di, dj, dk) *
                                       at(i + di, j + dj, k + dk);
                    expect.push_back(acc);
                    actual.push_back(
                        got[(static_cast<size_t>(i) * dNJ + j) * dNK +
                            k]);
                }
        return compareFloats(expect, actual);
    }

    GpuProgram
    gpuProgram() override
    {
        GpuProgram p;
        // One thread per (i, j) interior pair: 256 threads.
        p.dispatches.push_back({dInterior * dInterior,
                                [this](Assembler &as) {
            as.li(x(5), dInterior);
            as.div(x(6), gpuTidReg, x(5));
            as.rem(x(7), gpuTidReg, x(5));
            as.addi(x(6), x(6), 1);   // i
            as.addi(x(7), x(7), 1);   // j
            as.la(x(8), inAddr_);
            // base = in + ((i*dNJ + j) * dNK) * 4
            as.li(x(9), dNJ);
            as.mul(x(10), x(6), x(9));
            as.add(x(10), x(10), x(7));
            emitScale(as, x(10), x(10), dNK * 4, x(11));
            as.add(x(10), x(8), x(10));
            as.la(x(8), outAddr_);
            as.li(x(9), dNJ);
            as.mul(x(12), x(6), x(9));
            as.add(x(12), x(12), x(7));
            emitScale(as, x(12), x(12), dNK * 4, x(11));
            as.add(x(12), x(8), x(12));
            as.addi(x(12), x(12), 4);
            for (int p = 0; p < 27; ++p)
                emitFConst(as, f(4 + p),
                           conv3Coef(p / 9 - 1, (p / 3) % 3 - 1,
                                     p % 3 - 1),
                           x(11));
            as.li(x(13), 0);
            as.li(x(14), 2 * dChunk);
            Loop kl(as, x(13), x(14), 1);
            {
                emitFZero(as, f(0));
                for (int p = 0; p < 27; ++p) {
                    int di = p / 9 - 1, dj = (p / 3) % 3 - 1,
                        dk = p % 3 - 1;
                    as.flw(f(1), x(10),
                           ((di * dNJ + dj) * dNK + dk + 1) * 4);
                    as.fmadd(f(0), f(1), f(4 + p), f(0));
                }
                as.fsw(f(0), x(12), 0);
                as.addi(x(10), x(10), 4);
                as.addi(x(12), x(12), 4);
            }
            kl.end();
        }});
        return p;
    }

  protected:
    void
    emit(SpmdBuilder &b) override
    {
        // Express the volume as a row-linearized stencil: grid row
        // g = i*dNJ + j is a run of dNK contiguous words, and the
        // nine (di, dj) neighbor rows are at fixed row deltas
        // di*dNJ + dj. Tasks walk grid rows g = 19 .. 306 (covering
        // every interior (i, j)); the halo rows inside that range are
        // computed too but never verified — their neighbor reads stay
        // inside the allocated heap.
        RowStencilSpec s;
        s.tasks = dInterior * dNJ;  // 288 grid rows: 19 .. 306.
        s.rowBase = 0;
        s.rowWords = dNK;
        s.outBase = outAddr_ +
                    static_cast<Addr>((dNJ + 1) * dNK) * 4;
        s.outColStart = 1;
        s.chunkOutputs = dChunk;
        s.chunksPerTask = 2;
        s.streams.clear();
        for (int di = -1; di <= 1; ++di)
            for (int dj = -1; dj <= 1; ++dj)
                s.streams.push_back(
                    {inAddr_ +
                         static_cast<Addr>((dNJ + 1) * dNK) * 4,
                     di * dNJ + dj, 0,
                     // One pointer group per di plane keeps every
                     // immediate offset within the 12-bit range.
                     di + 1, di * dNJ});
        // Hoist all 27 taps into f4..f30.
        s.hoist = [](Assembler &as) {
            for (int p = 0; p < 27; ++p)
                emitFConst(as, f(4 + p),
                           conv3Coef(p / 9 - 1, (p / 3) % 3 - 1,
                                     p % 3 - 1),
                           x(9));
        };
        s.compute = [](Assembler &as, const StencilLoad &load, int t) {
            emitFZero(as, f(0));
            for (int p = 0; p < 9; ++p) {
                for (int dk = -1; dk <= 1; ++dk) {
                    load(f(1), p, t + dk + 1);
                    as.fmadd(f(0), f(1), f(4 + p * 3 + dk + 1), f(0));
                }
            }
        };
        emitRowStencilPhase(b, s);
    }

  private:
    std::vector<float> in_;
    Addr inAddr_ = 0, outAddr_ = 0;
};

} // namespace

std::unique_ptr<Benchmark>
makeConv2d()
{
    return std::make_unique<Conv2d>();
}
std::unique_ptr<Benchmark>
makeFdtd2d()
{
    return std::make_unique<Fdtd2d>();
}
std::unique_ptr<Benchmark>
makeConv3d()
{
    return std::make_unique<Conv3d>();
}

} // namespace rockcress
