/**
 * @file
 * Benchmark infrastructure: the global-heap allocator, host-side
 * array mirroring, and the Benchmark interface every PolyBench/GPU
 * kernel implements (Table 2), covering the NV / NV_PF / PCV_PF
 * manycore variants, the V4/V16 (+PCV/+LL) vector variants, and a
 * GPU lane program.
 */

#ifndef ROCKCRESS_KERNELS_COMMON_HH
#define ROCKCRESS_KERNELS_COMMON_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compiler/codegen.hh"
#include "machine/machine.hh"
#include "sim/rng.hh"

namespace rockcress
{

/** Bump allocator for the DRAM-backed global heap. */
class Heap
{
  public:
    explicit Heap(Addr capacity) : capacity_(capacity) {}

    /** Allocate cache-line-aligned storage; returns global address. */
    Addr alloc(Addr bytes, Addr align = 64);

    /** Words allocated so far. */
    Addr used() const { return next_; }

  private:
    Addr capacity_;
    Addr next_ = 0;
};

/** Upload a host float vector to machine memory. */
void uploadFloats(MainMemory &mem, Addr base,
                  const std::vector<float> &data);
/** Download a float vector from machine memory. */
std::vector<float> downloadFloats(const MainMemory &mem, Addr base,
                                  size_t count);
/** Upload a host word vector. */
void uploadWords(MainMemory &mem, Addr base,
                 const std::vector<Word> &data);
std::vector<Word> downloadWords(const MainMemory &mem, Addr base,
                                size_t count);

/** Deterministic pseudo-random float in (lo, hi). */
std::vector<float> randomFloats(size_t count, std::uint64_t seed,
                                float lo = 0.0f, float hi = 1.0f);

/**
 * Compare a downloaded result against the host reference with the
 * PolyBench-style relative tolerance.
 * @return Empty string on success, else a description of the first
 *         mismatch.
 */
std::string compareFloats(const std::vector<float> &expect,
                          const std::vector<float> &got,
                          float rel_tol = 5e-2f, float abs_tol = 1e-3f);

/** A GPU dispatch: a lane program run once per thread. */
struct GpuKernelSpec
{
    /** Total threads; must be a multiple of the wavefront size. */
    int threads = 0;
    /**
     * Emit the lane program. The thread id is pre-loaded in
     * gpuTidReg; the program must end (builder appends halt).
     */
    std::function<void(Assembler &)> emit;
};

/** Register holding the global thread id in GPU lane programs. */
constexpr RegIdx gpuTidReg = x(28);

/** A full multi-dispatch GPU run. */
struct GpuProgram
{
    std::vector<GpuKernelSpec> dispatches;
};

/**
 * One benchmark of the suite: owns its sizes, host reference, memory
 * image, and per-configuration code generation.
 */
class Benchmark
{
  public:
    virtual ~Benchmark() = default;

    virtual std::string name() const = 0;
    virtual std::string description() const = 0;
    virtual int kernelCount() const = 0;

    /**
     * Allocate and initialize the benchmark's arrays in machine
     * memory, build the per-configuration program, load it, and plan
     * the vector groups. After this the machine is ready to run().
     * @return The assembled program, for static verification and
     *         listing.
     */
    std::shared_ptr<const Program> prepare(Machine &machine,
                                           const BenchConfig &cfg);

    /**
     * Verify machine memory against the host reference.
     * @return Empty string on success, else the mismatch description.
     */
    virtual std::string check(const MainMemory &mem) const = 0;

    /** The GPU realization of this benchmark (element-per-thread). */
    virtual GpuProgram gpuProgram() = 0;

    /** Set up arrays in memory (shared by manycore and GPU paths). */
    virtual void setup(MainMemory &mem, Heap &heap) = 0;

  protected:
    /** Emit all phases for the configuration into the builder. */
    virtual void emit(SpmdBuilder &b) = 0;

    /** Plan the standard consecutive-id vector groups. */
    static void planGroups(Machine &machine, const BenchConfig &cfg);
};

/** Create the full PolyBench/GPU suite in Table 2 order. */
std::vector<std::unique_ptr<Benchmark>> makeSuite();

/** Create one benchmark by name (includes "bfs"). */
std::unique_ptr<Benchmark> makeBenchmark(const std::string &name);

/** All suite names in Table 2 order. */
std::vector<std::string> suiteNames();

} // namespace rockcress

#endif // ROCKCRESS_KERNELS_COMMON_HH
