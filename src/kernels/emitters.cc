#include "kernels/emitters.hh"

#include <algorithm>

#include "sim/log.hh"

namespace rockcress
{

void
emitFConst(Assembler &as, RegIdx freg, float value, RegIdx tmp)
{
    as.li(tmp, static_cast<std::int32_t>(floatToWord(value)));
    as.fmvWX(freg, tmp);
}

void
emitFZero(Assembler &as, RegIdx freg)
{
    Instruction i;
    i.op = Opcode::FCVT_SW;
    i.rd = freg;
    i.rs1 = regZero;
    as.emit(i);
}

namespace
{

/** Chunk geometry for streamed phases. */
struct Chunking
{
    int w = 16;        ///< Words per lane per Group vload.
    int F = 16;        ///< Words per lane per stream per frame.
    int numFrames = 8;
};

Chunking
vectorChunking(const SpmdBuilder &b)
{
    Chunking c;
    const BenchConfig &cfg = b.config();
    c.w = std::min(16, b.lineWords() / cfg.groupSize);
    c.F = cfg.longLines ? 16 : std::max(8, c.w);
    return c;
}

void
fzero(Assembler &as, RegIdx freg)
{
    emitFZero(as, freg);
}

void
emitFrameCfg(Assembler &as, int frame_words, int num_frames, RegIdx tmp)
{
    as.li(tmp, frame_words | (num_frames << 16));
    as.csrw(Csr::FrameCfg, tmp);
}

/** Emit the dot-product macs over one frame (scalar or SIMD). */
void
emitDotChunk(Assembler &as, RegIdx fb, int f_words, bool selfdot,
             int second_off_bytes, bool simd)
{
    if (!simd) {
        for (int u = 0; u < f_words; ++u) {
            as.flw(f(1), fb, 4 * u);
            if (selfdot) {
                as.fmadd(f(0), f(1), f(1), f(0));
            } else {
                as.flw(f(2), fb, second_off_bytes + 4 * u);
                as.fmadd(f(0), f(1), f(2), f(0));
            }
        }
        return;
    }
    for (int u = 0; u < f_words; u += 4) {
        as.simdLw(v(0), fb, 4 * u);
        if (selfdot) {
            as.simdFma(v(2), v(0), v(0), v(2));
        } else {
            as.simdLw(v(1), fb, second_off_bytes + 4 * u);
            as.simdFma(v(2), v(0), v(1), v(2));
        }
    }
}

} // namespace

// ===========================================================================
// Matvec family
// ===========================================================================

namespace
{

void
emitMatvecNv(SpmdBuilder &b, const MatvecSpec &s)
{
    bool selfdot = s.vecIn == 0;
    b.mimdPhase([&, selfdot](Assembler &as) {
        int W = b.activeCores();
        as.la(x(8), s.mat);
        if (!selfdot)
            as.la(x(10), s.vecIn);
        as.la(x(16), s.out);
        if (s.alpha != 1.0f)
            emitFConst(as, f(3), s.alpha, x(9));
        as.mv(x(5), rCoreId);
        as.li(x(6), s.rows);
        Loop rows(as, x(5), x(6), W);
        {
            emitAffine(as, x(7), x(8), x(5), s.cols * 4, x(9));
            if (!selfdot)
                as.mv(x(11), x(10));
            fzero(as, f(0));
            as.li(x(12), 0);
            as.li(x(13), s.cols);
            Loop kl(as, x(12), x(13), 4);
            for (int u = 0; u < 4; ++u) {
                as.flw(f(1), x(7), 4 * u);
                if (selfdot) {
                    as.fmadd(f(0), f(1), f(1), f(0));
                } else {
                    as.flw(f(2), x(11), 4 * u);
                    as.fmadd(f(0), f(1), f(2), f(0));
                }
            }
            as.addi(x(7), x(7), 16);
            if (!selfdot)
                as.addi(x(11), x(11), 16);
            kl.end();
            emitAffine(as, x(14), x(16), x(5), 4, x(9));
            if (s.alpha != 1.0f)
                as.fmul(f(0), f(0), f(3));
            if (s.accumulate) {
                as.flw(f(2), x(14), 0);
                as.fadd(f(0), f(0), f(2));
            }
            as.fsw(f(0), x(14), 0);
        }
        rows.end();
    });
}

void
emitMatvecPf(SpmdBuilder &b, const MatvecSpec &s)
{
    bool selfdot = s.vecIn == 0;
    bool simd = b.config().simdWords > 1;
    const int F = 16;
    int nstreams = selfdot ? 1 : 2;
    int frame_words = nstreams * F;
    const int num_frames = 8;
    if (s.cols % F != 0)
        fatal("matvec: cols must divide by ", F);

    b.mimdPhase([&, selfdot, simd](Assembler &as) {
        int W = b.activeCores();
        emitFrameCfg(as, frame_words, num_frames, x(9));
        DaeStreamRegs regs;
        FrameRotator rot(as, regs.off, frame_words * 4, num_frames);
        rot.emitInit();
        as.la(x(8), s.mat);
        if (!selfdot)
            as.la(x(10), s.vecIn);
        as.la(x(16), s.out);
        if (s.alpha != 1.0f)
            emitFConst(as, f(3), s.alpha, x(9));
        as.mv(x(5), rCoreId);
        as.li(x(6), s.rows);
        Loop rows(as, x(5), x(6), W);
        {
            emitAffine(as, x(7), x(8), x(5), s.cols * 4, x(9));
            if (!selfdot)
                as.mv(x(11), x(10));
            fzero(as, f(0));
            if (simd) {
                fzero(as, f(2));
                as.simdBcast(v(2), f(2));
            }
            DaeStreamSpec spec;
            spec.iters = s.cols / F;
            spec.frameBytes = frame_words * 4;
            spec.numFrames = num_frames;
            spec.fill = [&, selfdot](Assembler &a, RegIdx off) {
                a.vload(x(7), off, 0, F, VloadVariant::Self);
                a.addi(x(7), x(7), F * 4);
                if (!selfdot) {
                    a.addi(regs.tmp, off, F * 4);
                    a.vload(x(11), regs.tmp, 0, F, VloadVariant::Self);
                    a.addi(x(11), x(11), F * 4);
                }
            };
            spec.consume = [&, selfdot, simd](Assembler &a, RegIdx fb) {
                emitDotChunk(a, fb, F, selfdot, F * 4, simd);
            };
            emitMimdStream(as, spec, rot, regs);
            if (simd)
                as.simdRedsum(f(0), v(2));
            emitAffine(as, x(14), x(16), x(5), 4, x(9));
            if (s.alpha != 1.0f)
                as.fmul(f(0), f(0), f(3));
            if (s.accumulate) {
                as.flw(f(2), x(14), 0);
                as.fadd(f(0), f(0), f(2));
            }
            as.fsw(f(0), x(14), 0);
        }
        rows.end();
    });
}

void
emitMatvecVector(SpmdBuilder &b, const MatvecSpec &s)
{
    const BenchConfig &cfg = b.config();
    bool selfdot = s.vecIn == 0;
    bool simd = cfg.simdWords > 1;
    Chunking ch = vectorChunking(b);
    int VLEN = cfg.groupSize;
    int G = b.numGroups();
    int nstreams = selfdot ? 1 : 2;
    // Shrink the chunk until it divides the row length (long lines
    // with wide groups can otherwise overshoot short rows).
    while (ch.F > 1 && s.cols % (ch.F * VLEN) != 0)
        ch.F /= 2;
    ch.w = std::min(ch.w, ch.F);
    int frame_words = nstreams * ch.F;
    if (s.cols % (ch.F * VLEN) != 0)
        fatal("matvec: cols ", s.cols, " must divide by ", ch.F * VLEN);
    if (s.partials == 0)
        fatal("matvec: vector configuration needs a partials buffer");

    Label init = b.declareMicrothread();
    Label body = b.declareMicrothread();
    Label rowfin = b.declareMicrothread();

    b.defineMicrothread(init, [=](Assembler &as) {
        fzero(as, f(0));
        if (simd) {
            fzero(as, f(2));
            as.simdBcast(v(2), f(2));
        }
        as.csrr(x(5), Csr::GroupTid);
        as.csrr(x(6), Csr::CoreId);
        as.li(x(7), VLEN + 1);
        as.div(x(6), x(6), x(7));              // group id
        as.la(x(9), s.partials);
        emitScale(as, x(10), x(6), 16 * 4, x(11));
        as.add(x(9), x(9), x(10));
        emitScale(as, x(10), x(5), 4, x(11));
        as.add(x(9), x(9), x(10));
        as.li(x(12), G * 16 * 4);              // partials row step
    });
    b.defineMicrothread(body, [=](Assembler &as) {
        as.frameStart(x(13));
        emitDotChunk(as, x(13), ch.F, selfdot, ch.F * 4, simd);
        as.remem();
    });
    b.defineMicrothread(rowfin, [=](Assembler &as) {
        if (simd) {
            as.simdRedsum(f(0), v(2));
            fzero(as, f(2));
            as.simdBcast(v(2), f(2));
        }
        as.fsw(f(0), x(9), 0);
        fzero(as, f(0));
        as.add(x(9), x(9), x(12));
    });

    b.vectorPhase(frame_words, ch.numFrames, [=, &b](Assembler &as) {
        as.vissue(init);
        as.la(x(5), s.mat);
        if (!selfdot)
            as.la(x(6), s.vecIn);
        DaeStreamRegs regs;
        FrameRotator rot(as, regs.off, frame_words * 4, ch.numFrames);
        rot.emitInit();
        as.mv(x(7), rGroupId);
        as.li(x(8), s.rows);
        Loop rows(as, x(7), x(8), G);
        {
            emitAffine(as, x(9), x(5), x(7), s.cols * 4, x(10));
            if (!selfdot)
                as.mv(x(11), x(6));
            DaeStreamSpec spec;
            spec.iters = s.cols / (ch.F * VLEN);
            spec.frameBytes = frame_words * 4;
            spec.numFrames = ch.numFrames;
            spec.bodyMt = body;
            int vps = ch.F / ch.w;  // Group vloads per stream per frame
            spec.fill = [=](Assembler &a, RegIdx off) {
                for (int si = 0; si < vps; ++si) {
                    RegIdx areg = x(9);
                    RegIdx oreg = off;
                    if (si > 0) {
                        a.addi(x(13), x(9), si * ch.w * VLEN * 4);
                        areg = x(13);
                        a.addi(x(14), off, si * ch.w * 4);
                        oreg = x(14);
                    }
                    a.vload(areg, oreg, 0, ch.w, VloadVariant::Group);
                }
                a.addi(x(9), x(9), ch.F * VLEN * 4);
                if (!selfdot) {
                    for (int si = 0; si < vps; ++si) {
                        RegIdx areg = x(11);
                        if (si > 0) {
                            a.addi(x(13), x(11), si * ch.w * VLEN * 4);
                            areg = x(13);
                        }
                        a.addi(x(14), off, ch.F * 4 + si * ch.w * 4);
                        a.vload(areg, x(14), 0, ch.w,
                                VloadVariant::Group);
                    }
                    a.addi(x(11), x(11), ch.F * VLEN * 4);
                }
            };
            emitScalarStream(as, spec, rot, regs);
            as.vissue(rowfin);
        }
        rows.end();
    });

    // Reduce the per-lane partials: out[i] (+)= alpha * sum(partials).
    b.mimdPhase([=, &b](Assembler &as) {
        int W = b.activeCores();
        as.la(x(5), s.partials);
        as.la(x(6), s.out);
        if (s.alpha != 1.0f)
            emitFConst(as, f(3), s.alpha, x(9));
        as.mv(x(7), rCoreId);
        as.li(x(8), s.rows);
        Loop r(as, x(7), x(8), W);
        {
            emitScale(as, x(9), x(7), 16 * 4, x(10));
            as.add(x(9), x(5), x(9));
            fzero(as, f(0));
            for (int l = 0; l < VLEN; ++l) {
                as.flw(f(1), x(9), 4 * l);
                as.fadd(f(0), f(0), f(1));
            }
            if (s.alpha != 1.0f)
                as.fmul(f(0), f(0), f(3));
            emitAffine(as, x(10), x(6), x(7), 4, x(11));
            if (s.accumulate) {
                as.flw(f(2), x(10), 0);
                as.fadd(f(0), f(0), f(2));
            }
            as.fsw(f(0), x(10), 0);
        }
        r.end();
    });
}

} // namespace

void
emitMatvecPhase(SpmdBuilder &b, const MatvecSpec &s)
{
    const BenchConfig &cfg = b.config();
    if (cfg.isVector())
        emitMatvecVector(b, s);
    else if (cfg.dae)
        emitMatvecPf(b, s);
    else
        emitMatvecNv(b, s);
}

// ===========================================================================
// Transpose-side matvec (y = A^T x)
// ===========================================================================

namespace
{

/**
 * NV / NV_PF: each worker owns 4-column blocks and walks rows with
 * plain word loads. The column access cannot be coalesced into wide
 * loads (Section 6.6: these benchmarks "use group loads where NV_PF
 * cannot"), so both baselines take the strided-scalar-load path; with
 * the matrix far larger than the LLC, every pass over a column block
 * refetches its lines from DRAM.
 */
void
emitMatvecTMimd(SpmdBuilder &b, const MatvecTSpec &s)
{
    const int jb = 4;          ///< Columns per block.

    b.mimdPhase([&](Assembler &as) {
        int W = b.activeCores();
        as.la(x(16), s.mat);
        as.la(x(17), s.vecIn);
        as.la(x(18), s.out);
        emitScale(as, x(5), rCoreId, jb, x(9));  // first column block
        as.li(x(6), s.cols);
        Loop blocks(as, x(5), x(6), W * jb);
        {
            for (int u = 0; u < jb; ++u)
                fzero(as, f(10 + u));
            emitAffine(as, x(7), x(16), x(5), 4, x(9));  // &A[0][jb]
            as.mv(x(8), x(17));                          // x pointer
            as.li(x(10), 0);
            as.li(x(11), s.rows);
            Loop il(as, x(10), x(11), 1);
            {
                as.flw(f(1), x(8), 0);
                for (int u = 0; u < jb; ++u) {
                    as.flw(f(2), x(7), 4 * u);
                    as.fmadd(f(10 + u), f(2), f(1), f(10 + u));
                }
                emitAddImm(as, x(7), x(7), s.cols * 4, x(9));
                as.addi(x(8), x(8), 4);
            }
            il.end();
            emitAffine(as, x(9), x(18), x(5), 4, x(10));
            for (int u = 0; u < jb; ++u) {
                if (s.accumulate) {
                    as.flw(f(2), x(9), 4 * u);
                    as.fadd(f(10 + u), f(10 + u), f(2));
                }
                as.fsw(f(10 + u), x(9), 4 * u);
            }
        }
        blocks.end();
    });
}

/** Vector groups: stream rows with Group loads; lanes accumulate
 * their column slice in scratchpad and flush at the end. */
void
emitMatvecTVector(SpmdBuilder &b, const MatvecTSpec &s)
{
    const BenchConfig &cfg = b.config();
    int VLEN = cfg.groupSize;
    int G = b.numGroups();
    Chunking ch = vectorChunking(b);
    int lane_cols = s.cols / VLEN;     ///< Columns owned per lane.
    int frame_words = lane_cols + 1;   ///< Row slice + x broadcast.
    // Frames plus the partial slice must fit the 4 kB scratchpad.
    int num_frames =
        (frame_words * 8 + lane_cols) * 4 <= 4096 ? 8 : 5;
    int pbase = frame_words * 4 * num_frames;  ///< Spad partial base.
    if (s.cols % (ch.w * VLEN) != 0)
        fatal("matvecT: cols must divide by ", ch.w * VLEN);
    if (s.partials == 0)
        fatal("matvecT: vector configuration needs a partials buffer");

    Label init = b.declareMicrothread();
    Label body = b.declareMicrothread();
    Label fin = b.declareMicrothread();

    b.defineMicrothread(init, [=](Assembler &as) {
        as.csrr(x(5), Csr::GroupTid);
        as.csrr(x(6), Csr::CoreId);
        // Own scratchpad base in the global address map.
        as.slli(x(9), x(6), 16);
        emitAddImm(as, x(9), x(9), pbase, x(7));
        // Zero the partial slice.
        for (int p = 0; p < lane_cols; ++p)
            as.sw(regZero, x(9), 4 * p);
        // Global flush base: partials + g*cols*4 + tid*w*4.
        as.li(x(7), VLEN + 1);
        as.div(x(6), x(6), x(7));
        as.la(x(11), s.partials);
        emitScale(as, x(10), x(6), s.cols * 4, x(7));
        as.add(x(11), x(11), x(10));
        emitScale(as, x(10), x(5), ch.w * 4, x(7));
        as.add(x(11), x(11), x(10));
    });
    b.defineMicrothread(body, [=](Assembler &as) {
        as.frameStart(x(13));
        as.flw(f(1), x(13), lane_cols * 4);   // broadcast x[i]
        for (int p = 0; p < lane_cols; ++p) {
            as.flw(f(2), x(13), 4 * p);       // A row slice
            as.flw(f(3), x(9), 4 * p);        // partial (scratchpad)
            as.fmadd(f(3), f(2), f(1), f(3));
            as.fsw(f(3), x(9), 4 * p);
        }
        as.remem();
    });
    b.defineMicrothread(fin, [=](Assembler &as) {
        // Flush partials: lane column j(p) = (p/w)*w*VLEN + l*w + p%w.
        for (int p = 0; p < lane_cols; ++p) {
            int goff = ((p / ch.w) * ch.w * VLEN + (p % ch.w)) * 4;
            as.flw(f(3), x(9), 4 * p);
            as.fsw(f(3), x(11), goff);
        }
    });

    b.vectorPhase(frame_words, num_frames, [=, &b](Assembler &as) {
        as.vissue(init);
        as.la(x(5), s.mat);
        as.la(x(6), s.vecIn);
        DaeStreamRegs regs;
        FrameRotator rot(as, regs.off, frame_words * 4, num_frames,
                         x(27));
        rot.emitInit();
        emitAffine(as, x(10), x(6), rGroupId, 4, x(9));  // x pointer
        as.mv(x(7), rGroupId);
        as.li(x(8), s.rows);
        int vps = lane_cols / ch.w;   ///< Group loads per row.
        Loop rows(as, x(7), x(8), G);
        {
            emitAffine(as, x(9), x(5), x(7), s.cols * 4, x(11));
            for (int si = 0; si < vps; ++si) {
                RegIdx areg = x(9);
                RegIdx oreg = regs.off;
                if (si > 0) {
                    emitAddImm(as, x(13), x(9), si * ch.w * VLEN * 4,
                               x(11));
                    areg = x(13);
                    as.addi(x(14), regs.off, si * ch.w * 4);
                    oreg = x(14);
                }
                as.vload(areg, oreg, 0, ch.w, VloadVariant::Group);
            }
            // Broadcast x[i] to every lane's frame.
            as.addi(x(14), regs.off, lane_cols * 4);
            for (int l = 0; l < VLEN; ++l)
                as.vload(x(10), x(14), l, 1, VloadVariant::Single);
            rot.emitAdvance();
            as.vissue(body);
            as.addi(x(10), x(10), G * 4);
        }
        rows.end();
        as.vissue(fin);
    });

    // Reduce: y[j] (+)= sum over groups of partials[g][j].
    b.mimdPhase([=, &b](Assembler &as) {
        int W = b.activeCores();
        as.la(x(5), s.partials);
        as.la(x(6), s.out);
        as.mv(x(7), rCoreId);
        as.li(x(8), s.cols);
        Loop jl(as, x(7), x(8), W);
        {
            emitAffine(as, x(9), x(5), x(7), 4, x(10));
            fzero(as, f(0));
            for (int g = 0; g < G; ++g) {
                as.flw(f(1), x(9), 0);
                as.fadd(f(0), f(0), f(1));
                emitAddImm(as, x(9), x(9), s.cols * 4, x(10));
            }
            emitAffine(as, x(9), x(6), x(7), 4, x(10));
            if (s.accumulate) {
                as.flw(f(2), x(9), 0);
                as.fadd(f(0), f(0), f(2));
            }
            as.fsw(f(0), x(9), 0);
        }
        jl.end();
    });
}

} // namespace

void
emitMatvecTransposePhase(SpmdBuilder &b, const MatvecTSpec &s)
{
    if (b.config().isVector())
        emitMatvecTVector(b, s);
    else
        emitMatvecTMimd(b, s);
}

// ===========================================================================
// Matmul family
// ===========================================================================

namespace
{

/** Emit alpha/beta application and the store of C[i][j]. */
void
emitCStore(Assembler &as, const MatmulSpec &s, RegIdx ptr_c, bool simd)
{
    if (simd) {
        as.simdRedsum(f(0), v(2));
        fzero(as, f(2));
        as.simdBcast(v(2), f(2));
    }
    if (s.alpha != 1.0f)
        as.fmul(f(0), f(0), f(3));
    if (s.beta != 0.0f) {
        as.flw(f(2), ptr_c, 0);
        as.fmul(f(2), f(2), f(4));
        as.fadd(f(0), f(0), f(2));
    }
    as.fsw(f(0), ptr_c, 0);
    fzero(as, f(0));
}

void
emitMatmulNv(SpmdBuilder &b, const MatmulSpec &s)
{
    b.mimdPhase([&](Assembler &as) {
        int W = b.activeCores();
        as.la(x(16), s.a);
        as.la(x(17), s.bt);
        as.la(x(18), s.c);
        if (s.alpha != 1.0f)
            emitFConst(as, f(3), s.alpha, x(9));
        if (s.beta != 0.0f)
            emitFConst(as, f(4), s.beta, x(9));
        as.mv(x(5), rCoreId);
        as.li(x(6), s.n);
        Loop rows(as, x(5), x(6), W);
        {
            emitAffine(as, x(7), x(16), x(5), s.k * 4, x(9)); // A row
            emitAffine(as, x(15), x(18), x(5),
                       s.storeTransposed ? 4 : s.m * 4, x(9)); // C row
            as.mv(x(8), x(17));                               // BT row
            as.li(x(10), 0);
            as.li(x(11), s.m);
            Loop jl(as, x(10), x(11), 1);
            {
                fzero(as, f(0));
                as.mv(x(12), x(7));
                as.mv(x(13), x(8));
                as.li(x(14), 0);
                as.li(x(19), s.k);
                Loop kl(as, x(14), x(19), 4);
                for (int u = 0; u < 4; ++u) {
                    as.flw(f(1), x(12), 4 * u);
                    as.flw(f(2), x(13), 4 * u);
                    as.fmadd(f(0), f(1), f(2), f(0));
                }
                as.addi(x(12), x(12), 16);
                as.addi(x(13), x(13), 16);
                kl.end();
                emitCStore(as, s, x(15), false);
                as.addi(x(15), x(15),
                        s.storeTransposed ? s.n * 4 : 4);
                as.addi(x(8), x(8), s.k * 4);
            }
            jl.end();
        }
        rows.end();
    });
}

void
emitMatmulPf(SpmdBuilder &b, const MatmulSpec &s)
{
    bool simd = b.config().simdWords > 1;
    const int F = 16;
    const int frame_words = 2 * F;
    const int num_frames = 8;
    if (s.k % F != 0)
        fatal("matmul: k must divide by ", F);
    b.mimdPhase([&, simd](Assembler &as) {
        int W = b.activeCores();
        emitFrameCfg(as, frame_words, num_frames, x(9));
        DaeStreamRegs regs;
        FrameRotator rot(as, regs.off, frame_words * 4, num_frames);
        rot.emitInit();
        as.la(x(16), s.a);
        as.la(x(17), s.bt);
        as.la(x(18), s.c);
        if (s.alpha != 1.0f)
            emitFConst(as, f(3), s.alpha, x(9));
        if (s.beta != 0.0f)
            emitFConst(as, f(4), s.beta, x(9));
        if (simd) {
            fzero(as, f(2));
            as.simdBcast(v(2), f(2));
        }
        as.mv(x(5), rCoreId);
        as.li(x(6), s.n);
        Loop rows(as, x(5), x(6), W);
        {
            emitAffine(as, x(7), x(16), x(5), s.k * 4, x(9));
            emitAffine(as, x(15), x(18), x(5),
                       s.storeTransposed ? 4 : s.m * 4, x(9));
            as.mv(x(8), x(17));
            as.li(x(10), 0);
            as.li(x(11), s.m);
            Loop jl(as, x(10), x(11), 1);
            {
                fzero(as, f(0));
                as.mv(x(12), x(7));
                as.mv(x(13), x(8));
                DaeStreamSpec spec;
                spec.iters = s.k / F;
                spec.frameBytes = frame_words * 4;
                spec.numFrames = num_frames;
                spec.fill = [&](Assembler &a, RegIdx off) {
                    a.vload(x(12), off, 0, F, VloadVariant::Self);
                    a.addi(x(12), x(12), F * 4);
                    a.addi(regs.tmp, off, F * 4);
                    a.vload(x(13), regs.tmp, 0, F, VloadVariant::Self);
                    a.addi(x(13), x(13), F * 4);
                };
                spec.consume = [&, simd](Assembler &a, RegIdx fb) {
                    emitDotChunk(a, fb, F, false, F * 4, simd);
                };
                emitMimdStream(as, spec, rot, regs);
                emitCStore(as, s, x(15), simd);
                as.addi(x(15), x(15),
                        s.storeTransposed ? s.n * 4 : 4);
                as.addi(x(8), x(8), s.k * 4);
            }
            jl.end();
        }
        rows.end();
    });
}

void
emitMatmulVector(SpmdBuilder &b, const MatmulSpec &s)
{
    const BenchConfig &cfg = b.config();
    bool simd = cfg.simdWords > 1;
    int VLEN = cfg.groupSize;
    int G = b.numGroups();
    const int F = 16;  // Per-lane Single-load width (one line).
    const int frame_words = 2 * F;
    const int num_frames = 8;
    if (s.n % VLEN != 0)
        fatal("matmul: n must divide by the group size");
    if (s.k % F != 0)
        fatal("matmul: k must divide by ", F);

    Label init = b.declareMicrothread();
    Label body = b.declareMicrothread();
    Label storej = b.declareMicrothread();
    Label chunkfin = b.declareMicrothread();

    b.defineMicrothread(init, [=](Assembler &as) {
        fzero(as, f(0));
        if (simd) {
            fzero(as, f(2));
            as.simdBcast(v(2), f(2));
        }
        if (s.alpha != 1.0f)
            emitFConst(as, f(3), s.alpha, x(7));
        if (s.beta != 0.0f)
            emitFConst(as, f(4), s.beta, x(7));
        as.csrr(x(5), Csr::GroupTid);
        as.csrr(x(6), Csr::CoreId);
        as.li(x(7), VLEN + 1);
        as.div(x(6), x(6), x(7));              // group id
        emitScale(as, x(9), x(6), VLEN, x(7));
        as.add(x(9), x(9), x(5));              // lane row index
        as.li(x(15), s.storeTransposed ? 4 : s.m * 4);
        as.li(x(18), s.storeTransposed ? s.n * 4 : 4);
        as.la(x(16), s.c);
        as.mul(x(10), x(9), x(15));
        as.add(x(10), x(16), x(10));           // C pointer
        as.li(x(17), G * VLEN);                // chunk row step
    });
    b.defineMicrothread(body, [=](Assembler &as) {
        as.frameStart(x(13));
        emitDotChunk(as, x(13), F, false, F * 4, simd);
        as.remem();
    });
    b.defineMicrothread(storej, [=](Assembler &as) {
        emitCStore(as, s, x(10), simd);
        as.add(x(10), x(10), x(18));
    });
    b.defineMicrothread(chunkfin, [=](Assembler &as) {
        as.add(x(9), x(9), x(17));
        as.mul(x(11), x(9), x(15));
        as.add(x(10), x(16), x(11));
    });

    b.vectorPhase(frame_words, num_frames, [=, &b](Assembler &as) {
        as.vissue(init);
        as.la(x(5), s.a);
        as.la(x(6), s.bt);
        DaeStreamRegs regs;
        FrameRotator rot(as, regs.off, frame_words * 4, num_frames);
        rot.emitInit();
        as.mv(x(7), rGroupId);
        as.li(x(8), s.n / VLEN);
        Loop chunks(as, x(7), x(8), G);
        {
            emitAffine(as, x(9), x(5), x(7), VLEN * s.k * 4, x(10));
            as.mv(x(12), x(6));                 // BT row base
            as.li(x(10), 0);
            as.li(x(11), s.m);
            Loop jl(as, x(10), x(11), 1);
            {
                as.mv(x(13), x(9));             // A chunk pointer
                as.mv(x(14), x(12));            // BT chunk pointer
                DaeStreamSpec spec;
                spec.iters = s.k / F;
                spec.frameBytes = frame_words * 4;
                spec.numFrames = num_frames;
                spec.bodyMt = body;
                spec.fill = [=](Assembler &a, RegIdx off) {
                    for (int l = 0; l < VLEN; ++l) {
                        RegIdx areg = x(13);
                        if (l > 0) {
                            a.li(x(19), l * s.k * 4);
                            a.add(x(20), x(13), x(19));
                            areg = x(20);
                        }
                        a.vload(areg, off, l, F, VloadVariant::Single);
                    }
                    a.addi(x(21), off, F * 4);
                    for (int l = 0; l < VLEN; ++l)
                        a.vload(x(14), x(21), l, F,
                                VloadVariant::Single);
                    a.addi(x(13), x(13), F * 4);
                    a.addi(x(14), x(14), F * 4);
                };
                emitScalarStream(as, spec, rot, regs);
                as.vissue(storej);
                as.addi(x(12), x(12), s.k * 4);
            }
            jl.end();
            as.vissue(chunkfin);
        }
        chunks.end();
    });
}

} // namespace

void
emitMatmulPhase(SpmdBuilder &b, const MatmulSpec &s)
{
    const BenchConfig &cfg = b.config();
    if (cfg.isVector())
        emitMatmulVector(b, s);
    else if (cfg.dae)
        emitMatmulPf(b, s);
    else
        emitMatmulNv(b, s);
}

// ===========================================================================
// Row map
// ===========================================================================

namespace
{

/** Per-element transform: f0 = (f0 - fsub) * fscale. */
void
emitMapOp(Assembler &as, const RowMapSpec &s)
{
    if (s.sub != 0)
        as.fsub(f(0), f(0), f(5));
    if (s.scale != 0)
        as.fmul(f(0), f(0), f(6));
}

void
emitRowMapMimd(SpmdBuilder &b, const RowMapSpec &s)
{
    bool pf = b.config().dae;
    const int F = 16;
    const int num_frames = 8;
    b.mimdPhase([&, pf](Assembler &as) {
        int W = b.activeCores();
        DaeStreamRegs regs;
        FrameRotator rot(as, regs.off, F * 4, num_frames);
        if (pf) {
            emitFrameCfg(as, F, num_frames, x(9));
            rot.emitInit();
        }
        as.la(x(16), s.in);
        as.la(x(17), s.out);
        if (s.sub)
            as.la(x(18), s.sub);
        if (s.scale)
            as.la(x(19), s.scale);
        as.mv(x(5), rCoreId);
        as.li(x(6), s.rows);
        Loop rows(as, x(5), x(6), W);
        {
            emitAffine(as, x(7), x(16), x(5), s.cols * 4, x(9));
            emitAffine(as, x(8), x(17), x(5), s.cols * 4, x(9));
            if (s.sub) {
                emitAffine(as, x(10), x(18), x(5), 4, x(9));
                as.flw(f(5), x(10), 0);
            }
            if (s.scale) {
                emitAffine(as, x(10), x(19), x(5), 4, x(9));
                as.flw(f(6), x(10), 0);
            }
            if (!pf) {
                as.li(x(11), 0);
                as.li(x(12), s.cols);
                Loop cl(as, x(11), x(12), 2);
                for (int u = 0; u < 2; ++u) {
                    as.flw(f(0), x(7), 4 * u);
                    emitMapOp(as, s);
                    as.fsw(f(0), x(8), 4 * u);
                }
                as.addi(x(7), x(7), 8);
                as.addi(x(8), x(8), 8);
                cl.end();
            } else {
                DaeStreamSpec spec;
                spec.iters = s.cols / F;
                spec.frameBytes = F * 4;
                spec.numFrames = num_frames;
                spec.fill = [&](Assembler &a, RegIdx off) {
                    a.vload(x(7), off, 0, F, VloadVariant::Self);
                    a.addi(x(7), x(7), F * 4);
                };
                spec.consume = [&](Assembler &a, RegIdx fb) {
                    for (int u = 0; u < F; ++u) {
                        a.flw(f(0), fb, 4 * u);
                        emitMapOp(a, s);
                        a.fsw(f(0), x(8), 4 * u);
                    }
                    a.addi(x(8), x(8), F * 4);
                };
                emitMimdStream(as, spec, rot, regs);
            }
        }
        rows.end();
    });
}

void
emitRowMapVector(SpmdBuilder &b, const RowMapSpec &s)
{
    const BenchConfig &cfg = b.config();
    int VLEN = cfg.groupSize;
    int G = b.numGroups();
    const int F = 16;
    const int num_frames = 8;
    if (s.rows % VLEN != 0)
        fatal("rowmap: rows must divide by the group size");
    if (s.cols % F != 0)
        fatal("rowmap: cols must divide by ", F);

    Label init = b.declareMicrothread();
    Label nextrow = b.declareMicrothread();
    Label body = b.declareMicrothread();

    b.defineMicrothread(init, [=](Assembler &as) {
        as.csrr(x(5), Csr::GroupTid);
        as.csrr(x(6), Csr::CoreId);
        as.li(x(7), VLEN + 1);
        as.div(x(6), x(6), x(7));
        emitScale(as, x(9), x(6), VLEN, x(7));
        as.add(x(9), x(9), x(5));          // lane row
        as.li(x(17), G * VLEN);            // row step
        as.sub(x(9), x(9), x(17));         // pre-decrement; nextrow adds
        as.la(x(16), s.out);
        as.li(x(15), s.cols * 4);
        if (s.sub)
            as.la(x(18), s.sub);
        if (s.scale)
            as.la(x(19), s.scale);
    });
    b.defineMicrothread(nextrow, [=](Assembler &as) {
        as.add(x(9), x(9), x(17));
        as.mul(x(10), x(9), x(15));
        as.add(x(10), x(16), x(10));       // out pointer
        if (s.sub) {
            emitAffine(as, x(11), x(18), x(9), 4, x(12));
            as.flw(f(5), x(11), 0);
        }
        if (s.scale) {
            emitAffine(as, x(11), x(19), x(9), 4, x(12));
            as.flw(f(6), x(11), 0);
        }
    });
    b.defineMicrothread(body, [=](Assembler &as) {
        as.frameStart(x(13));
        for (int u = 0; u < F; ++u) {
            as.flw(f(0), x(13), 4 * u);
            emitMapOp(as, s);
            as.fsw(f(0), x(10), 4 * u);
        }
        as.addi(x(10), x(10), F * 4);
        as.remem();
    });

    b.vectorPhase(F, num_frames, [=, &b](Assembler &as) {
        as.vissue(init);
        as.la(x(5), s.in);
        DaeStreamRegs regs;
        FrameRotator rot(as, regs.off, F * 4, num_frames);
        rot.emitInit();
        as.mv(x(7), rGroupId);
        as.li(x(8), s.rows / VLEN);
        Loop chunks(as, x(7), x(8), G);
        {
            as.vissue(nextrow);
            emitAffine(as, x(9), x(5), x(7), VLEN * s.cols * 4, x(10));
            DaeStreamSpec spec;
            spec.iters = s.cols / F;
            spec.frameBytes = F * 4;
            spec.numFrames = num_frames;
            spec.bodyMt = body;
            spec.fill = [=](Assembler &a, RegIdx off) {
                for (int l = 0; l < VLEN; ++l) {
                    RegIdx areg = x(9);
                    if (l > 0) {
                        a.li(x(19), l * s.cols * 4);
                        a.add(x(20), x(9), x(19));
                        areg = x(20);
                    }
                    a.vload(areg, off, l, F, VloadVariant::Single);
                }
                a.addi(x(9), x(9), F * 4);
            };
            emitScalarStream(as, spec, rot, regs);
        }
        chunks.end();
    });
}

} // namespace

void
emitRowMapPhase(SpmdBuilder &b, const RowMapSpec &s)
{
    if (b.config().isVector())
        emitRowMapVector(b, s);
    else
        emitRowMapMimd(b, s);
}

} // namespace rockcress
