/**
 * @file
 * Factory declarations for every benchmark (Table 2 plus bfs).
 */

#ifndef ROCKCRESS_KERNELS_BENCH_DECLS_HH
#define ROCKCRESS_KERNELS_BENCH_DECLS_HH

#include <memory>

#include "kernels/common.hh"

namespace rockcress
{

std::unique_ptr<Benchmark> makeConv2d();
std::unique_ptr<Benchmark> make2mm();
std::unique_ptr<Benchmark> makeConv3d();
std::unique_ptr<Benchmark> make3mm();
std::unique_ptr<Benchmark> makeAtax();
std::unique_ptr<Benchmark> makeBicg();
std::unique_ptr<Benchmark> makeCorr();
std::unique_ptr<Benchmark> makeCovar();
std::unique_ptr<Benchmark> makeFdtd2d();
std::unique_ptr<Benchmark> makeGemm();
std::unique_ptr<Benchmark> makeGesummv();
std::unique_ptr<Benchmark> makeGramschm();
std::unique_ptr<Benchmark> makeMvt();
std::unique_ptr<Benchmark> makeSyr2k();
std::unique_ptr<Benchmark> makeSyrk();
std::unique_ptr<Benchmark> makeBfs();

} // namespace rockcress

#endif // ROCKCRESS_KERNELS_BENCH_DECLS_HH
