/**
 * @file
 * Gram-Schmidt orthonormalization. Column-major access defeats wide
 * loads (Section 6.3: "not able to take advantage of vector loads
 * due to its access pattern and must resort to scalar loads"), so
 * every configuration runs the cooperative scalar-load version; for
 * vector-group configurations the active cores execute it in
 * independent mode (the paper substitutes "the closest valid
 * configuration" for this benchmark too, Section 6.2).
 */

#include <cmath>

#include "kernels/bench_decls.hh"
#include "kernels/emitters.hh"
#include "kernels/gpu_helpers.hh"

namespace rockcress
{

namespace
{

constexpr int GM = 64;  ///< Rows (vector length).
constexpr int GN = 64;  ///< Columns (number of vectors).

class Gramschm final : public Benchmark
{
  public:
    std::string name() const override { return "gramschm"; }
    std::string description() const override
    {
        return "Gram-Schmidt decomposition";
    }
    int kernelCount() const override { return 3; }

    void
    setup(MainMemory &mem, Heap &heap) override
    {
        a_ = randomFloats(static_cast<size_t>(GM) * GN, 301, 0.1f, 1.1f);
        aAddr_ = heap.alloc(GM * GN * 4);
        qAddr_ = heap.alloc(GM * GN * 4);
        rAddr_ = heap.alloc(GN * GN * 4);
        partials_ = heap.alloc(64 * 4);
        scratch_ = heap.alloc(4);
        uploadFloats(mem, aAddr_, a_);
        uploadFloats(mem, rAddr_,
                     std::vector<float>(static_cast<size_t>(GN) * GN,
                                        0.0f));
    }

    std::string
    check(const MainMemory &mem) const override
    {
        std::vector<float> a = a_;
        std::vector<float> q(static_cast<size_t>(GM) * GN, 0.0f);
        std::vector<float> r(static_cast<size_t>(GN) * GN, 0.0f);
        auto A = [&](int i, int j) -> float & {
            return a[static_cast<size_t>(i) * GN + j];
        };
        auto Q = [&](int i, int j) -> float & {
            return q[static_cast<size_t>(i) * GN + j];
        };
        auto R = [&](int i, int j) -> float & {
            return r[static_cast<size_t>(i) * GN + j];
        };
        for (int k = 0; k < GN; ++k) {
            float nrm = 0;
            for (int i = 0; i < GM; ++i)
                nrm += A(i, k) * A(i, k);
            R(k, k) = std::sqrt(nrm);
            for (int i = 0; i < GM; ++i)
                Q(i, k) = A(i, k) / R(k, k);
            for (int j = k + 1; j < GN; ++j) {
                float rkj = 0;
                for (int i = 0; i < GM; ++i)
                    rkj += Q(i, k) * A(i, j);
                R(k, j) = rkj;
                for (int i = 0; i < GM; ++i)
                    A(i, j) -= Q(i, k) * rkj;
            }
        }
        std::string e = compareFloats(
            q, downloadFloats(mem, qAddr_, q.size()), 0.1f, 1e-2f);
        if (!e.empty())
            return "Q: " + e;
        e = compareFloats(r, downloadFloats(mem, rAddr_, r.size()),
                          0.1f, 1e-2f);
        return e.empty() ? "" : "R: " + e;
    }

    GpuProgram
    gpuProgram() override
    {
        // Per-k dispatches with uniform control flow: the triangular
        // column range is handled with predication (lane masking)
        // instead of divergent branches.
        GpuProgram p;
        for (int k = 0; k < GN; ++k) {
            // d1: partial[tid] = A[tid][k]^2.
            p.dispatches.push_back({GM, [this, k](Assembler &as) {
                as.la(x(5), aAddr_);
                emitAffine(as, x(6), x(5), gpuTidReg, GN * 4, x(7));
                as.flw(f(1), x(6), 4 * k);
                as.fmul(f(0), f(1), f(1));
                as.la(x(5), partials_);
                emitAffine(as, x(6), x(5), gpuTidReg, 4, x(7));
                as.fsw(f(0), x(6), 0);
            }});
            // d2: every lane redundantly reduces and stores R[k][k]
            // and its reciprocal (same value from every lane).
            p.dispatches.push_back({GM, [this, k](Assembler &as) {
                as.la(x(5), partials_);
                emitFZero(as, f(0));
                for (int w = 0; w < GM; ++w) {
                    as.flw(f(1), x(5), 4 * w);
                    as.fadd(f(0), f(0), f(1));
                }
                as.fsqrt(f(0), f(0));
                as.la(x(6), rAddr_);
                emitAddImm(as, x(6), x(6), k * (GN + 1) * 4, x(7));
                as.fsw(f(0), x(6), 0);
                emitFConst(as, f(2), 1.0f, x(7));
                as.fdiv(f(2), f(2), f(0));
                as.la(x(6), scratch_);
                as.fsw(f(2), x(6), 0);
            }});
            // d3: Q[tid][k] = A[tid][k] / R[k][k].
            p.dispatches.push_back({GM, [this, k](Assembler &as) {
                as.la(x(5), scratch_);
                as.flw(f(2), x(5), 0);
                as.la(x(5), aAddr_);
                emitAffine(as, x(6), x(5), gpuTidReg, GN * 4, x(7));
                as.flw(f(1), x(6), 4 * k);
                as.fmul(f(1), f(1), f(2));
                as.la(x(5), qAddr_);
                emitAffine(as, x(6), x(5), gpuTidReg, GN * 4, x(7));
                as.fsw(f(1), x(6), 4 * k);
            }});
            // d4: lane j computes R[k][j] and updates A[:, j],
            // masked to j > k.
            p.dispatches.push_back({GN, [this, k](Assembler &as) {
                as.li(x(5), k);
                as.slt(x(6), x(5), gpuTidReg);   // j > k
                as.predNeq(x(6), regZero);
                as.la(x(7), qAddr_);
                emitAddImm(as, x(7), x(7), 4 * k, x(9));
                as.la(x(8), aAddr_);
                emitAffine(as, x(8), x(8), gpuTidReg, 4, x(9));
                emitFZero(as, f(0));
                as.mv(x(11), x(7));
                as.mv(x(12), x(8));
                for (int i = 0; i < GM; ++i) {
                    as.flw(f(1), x(11), 0);
                    as.flw(f(3), x(12), 0);
                    as.fmadd(f(0), f(1), f(3), f(0));
                    as.addi(x(11), x(11), GN * 4);
                    as.addi(x(12), x(12), GN * 4);
                }
                as.la(x(10), rAddr_);
                emitAddImm(as, x(10), x(10), k * GN * 4, x(9));
                emitAffine(as, x(10), x(10), gpuTidReg, 4, x(9));
                as.fsw(f(0), x(10), 0);
                as.mv(x(11), x(7));
                as.mv(x(12), x(8));
                for (int i = 0; i < GM; ++i) {
                    as.flw(f(1), x(11), 0);
                    as.flw(f(3), x(12), 0);
                    as.fmul(f(1), f(1), f(0));
                    as.fsub(f(3), f(3), f(1));
                    as.fsw(f(3), x(12), 0);
                    as.addi(x(11), x(11), GN * 4);
                    as.addi(x(12), x(12), GN * 4);
                }
                as.predEq(regZero, regZero);
            }});
        }
        return p;
    }

  protected:
    void
    emit(SpmdBuilder &b) override
    {
        b.mimdPhase([this, &b](Assembler &as) {
            as.mv(x(5), rCoreId);
            emitBody(as, x(5), b.activeCores(), true);
        });
    }

  private:
    /**
     * The full decomposition for worker `wid` of W. On the GPU the
     * barrier degenerates: only thread 0's lane does the reductions,
     * which is correct because a single wavefront runs in lockstep.
     */
    void
    emitBody(Assembler &as, RegIdx wid, int W, bool with_barriers)
    {
        auto barrier = [&] {
            if (with_barriers)
                as.barrier();
        };
        as.la(x(6), aAddr_);
        as.la(x(7), qAddr_);
        as.la(x(8), rAddr_);
        as.la(x(9), partials_);
        as.la(x(10), scratch_);
        as.li(x(11), 0);      // k
        as.li(x(12), GN);     // bound
        Loop kl(as, x(11), x(12), 1);
        {
            // Partial sum of A[i][k]^2, i strided by W.
            emitFZero(as, f(0));
            emitAffine(as, x(13), x(6), x(11), 4, x(15));  // &A[0][k]
            emitAffine(as, x(14), x(13), wid, GN * 4, x(15));
            as.mv(x(16), wid);
            as.li(x(17), GM);
            {
                Loop il(as, x(16), x(17), W);
                as.flw(f(1), x(14), 0);
                as.fmadd(f(0), f(1), f(1), f(0));
                emitAddImm(as, x(14), x(14), W * GN * 4, x(15));
                il.end();
            }
            emitAffine(as, x(14), x(9), wid, 4, x(15));
            as.fsw(f(0), x(14), 0);
            barrier();

            // Worker 0 reduces, stores R[k][k] and 1/R[k][k].
            {
                Label skip = as.newLabel();
                as.bne(wid, regZero, skip);
                emitFZero(as, f(0));
                for (int w = 0; w < W; ++w) {
                    as.flw(f(1), x(9), 4 * w);
                    as.fadd(f(0), f(0), f(1));
                }
                as.fsqrt(f(0), f(0));
                emitScale(as, x(14), x(11), (GN + 1) * 4, x(15));
                as.add(x(14), x(8), x(14));   // &R[k][k]
                as.fsw(f(0), x(14), 0);
                emitFConst(as, f(2), 1.0f, x(15));
                as.fdiv(f(2), f(2), f(0));
                as.fsw(f(2), x(10), 0);
                as.bind(skip);
            }
            barrier();

            // Q[:, k] = A[:, k] / R[k][k].
            as.flw(f(2), x(10), 0);
            emitAffine(as, x(13), x(6), x(11), 4, x(15));
            emitAffine(as, x(14), x(13), wid, GN * 4, x(15));
            emitAffine(as, x(13), x(7), x(11), 4, x(15));
            emitAffine(as, x(18), x(13), wid, GN * 4, x(15));
            as.mv(x(16), wid);
            as.li(x(17), GM);
            {
                Loop il(as, x(16), x(17), W);
                as.flw(f(1), x(14), 0);
                as.fmul(f(1), f(1), f(2));
                as.fsw(f(1), x(18), 0);
                emitAddImm(as, x(14), x(14), W * GN * 4, x(15));
                emitAddImm(as, x(18), x(18), W * GN * 4, x(15));
                il.end();
            }
            barrier();

            // Columns j > k dealt to workers.
            as.addi(x(16), x(11), 1);
            as.add(x(16), x(16), wid);   // j
            as.li(x(17), GN);
            {
                Loop jl(as, x(16), x(17), W);
                // rkj = dot(Q[:, k], A[:, j])
                emitFZero(as, f(0));
                emitAffine(as, x(13), x(7), x(11), 4, x(15));
                emitAffine(as, x(14), x(6), x(16), 4, x(15));
                for (int i = 0; i < GM; ++i) {
                    as.flw(f(1), x(13), 0);
                    as.flw(f(3), x(14), 0);
                    as.fmadd(f(0), f(1), f(3), f(0));
                    as.addi(x(13), x(13), GN * 4);
                    as.addi(x(14), x(14), GN * 4);
                }
                emitAffine(as, x(13), x(8), x(11), GN * 4, x(15));
                emitAffine(as, x(13), x(13), x(16), 4, x(15));
                as.fsw(f(0), x(13), 0);   // R[k][j]
                // A[:, j] -= Q[:, k] * rkj
                emitAffine(as, x(13), x(7), x(11), 4, x(15));
                emitAffine(as, x(14), x(6), x(16), 4, x(15));
                for (int i = 0; i < GM; ++i) {
                    as.flw(f(1), x(13), 0);
                    as.flw(f(3), x(14), 0);
                    as.fmul(f(1), f(1), f(0));
                    as.fsub(f(3), f(3), f(1));
                    as.fsw(f(3), x(14), 0);
                    as.addi(x(13), x(13), GN * 4);
                    as.addi(x(14), x(14), GN * 4);
                }
                jl.end();
            }
            barrier();
        }
        kl.end();
    }

    std::vector<float> a_;
    Addr aAddr_ = 0, qAddr_ = 0, rAddr_ = 0, partials_ = 0, scratch_ = 0;
};

} // namespace

std::unique_ptr<Benchmark>
makeGramschm()
{
    return std::make_unique<Gramschm>();
}

} // namespace rockcress
