/**
 * @file
 * The matrix-vector benchmark family: atax, bicg, mvt, gesummv.
 * These are the kernels where Group loads shine (Section 6.6): all
 * lanes cooperate on one matrix row, so one wide request feeds the
 * whole group and amortization grows with the vector length.
 */

#include <cmath>

#include "kernels/bench_decls.hh"
#include "kernels/emitters.hh"
#include "kernels/gpu_helpers.hh"

namespace rockcress
{

namespace
{

constexpr int N = 512;

/** Transpose an N x N host matrix. */
std::vector<float>
transposed(const std::vector<float> &m, int rows, int cols)
{
    std::vector<float> t(m.size());
    for (int i = 0; i < rows; ++i)
        for (int j = 0; j < cols; ++j)
            t[static_cast<size_t>(j) * rows + i] =
                m[static_cast<size_t>(i) * cols + j];
    return t;
}

/** Host y (+)= alpha * M x. */
void
hostMatvec(const std::vector<float> &m, const std::vector<float> &x,
           std::vector<float> &y, int rows, int cols, bool acc = false,
           float alpha = 1.0f)
{
    for (int i = 0; i < rows; ++i) {
        float s = 0;
        for (int k = 0; k < cols; ++k)
            s += m[static_cast<size_t>(i) * cols + k] *
                 x[static_cast<size_t>(k)];
        if (acc)
            y[static_cast<size_t>(i)] += alpha * s;
        else
            y[static_cast<size_t>(i)] = alpha * s;
    }
}

// --- atax: y = A^T (A x) ----------------------------------------------------

class Atax final : public Benchmark
{
  public:
    std::string name() const override { return "atax"; }
    std::string description() const override
    {
        return "Mat-transpose vec (y = A^T A x)";
    }
    int kernelCount() const override { return 2; }

    void
    setup(MainMemory &mem, Heap &heap) override
    {
        a_ = randomFloats(static_cast<size_t>(N) * N, 11);
        x_ = randomFloats(N, 12);
        at_ = transposed(a_, N, N);   // host reference only
        aAddr_ = heap.alloc(N * N * 4);
        xAddr_ = heap.alloc(N * 4);
        tmpAddr_ = heap.alloc(N * 4);
        yAddr_ = heap.alloc(N * 4);
        partials_ = heap.alloc(N * 16 * 4);
        partialsT_ = heap.alloc(12 * N * 4);
        uploadFloats(mem, aAddr_, a_);
        uploadFloats(mem, xAddr_, x_);
    }

    std::string
    check(const MainMemory &mem) const override
    {
        std::vector<float> tmp(N), y(N);
        hostMatvec(a_, x_, tmp, N, N);
        hostMatvec(at_, tmp, y, N, N);
        return compareFloats(y, downloadFloats(mem, yAddr_, N));
    }

    GpuProgram
    gpuProgram() override
    {
        GpuProgram p;
        p.dispatches.push_back(
            {N, [this](Assembler &as) {
                 gpuDotRow(as, aAddr_, xAddr_, tmpAddr_, N);
             }});
        p.dispatches.push_back(
            {N, [this](Assembler &as) {
                 gpuDotCol(as, aAddr_, tmpAddr_, yAddr_, N, N);
             }});
        return p;
    }

  protected:
    void
    emit(SpmdBuilder &b) override
    {
        MatvecSpec s1;
        s1.mat = aAddr_;
        s1.vecIn = xAddr_;
        s1.out = tmpAddr_;
        s1.partials = partials_;
        s1.rows = N;
        s1.cols = N;
        emitMatvecPhase(b, s1);
        MatvecTSpec s2;
        s2.mat = aAddr_;
        s2.vecIn = tmpAddr_;
        s2.out = yAddr_;
        s2.partials = partialsT_;
        s2.rows = N;
        s2.cols = N;
        emitMatvecTransposePhase(b, s2);
    }

  private:
    std::vector<float> a_, at_, x_;
    Addr aAddr_ = 0, xAddr_ = 0, tmpAddr_ = 0, yAddr_ = 0,
         partials_ = 0, partialsT_ = 0;
};

// --- bicg: q = A p ; s = A^T r ----------------------------------------------

class Bicg final : public Benchmark
{
  public:
    std::string name() const override { return "bicg"; }
    std::string description() const override
    {
        return "Biconjugate gradient kernels (q = A p, s = A^T r)";
    }
    int kernelCount() const override { return 2; }

    void
    setup(MainMemory &mem, Heap &heap) override
    {
        a_ = randomFloats(static_cast<size_t>(N) * N, 21);
        p_ = randomFloats(N, 22);
        r_ = randomFloats(N, 23);
        at_ = transposed(a_, N, N);   // host reference only
        aAddr_ = heap.alloc(N * N * 4);
        pAddr_ = heap.alloc(N * 4);
        rAddr_ = heap.alloc(N * 4);
        qAddr_ = heap.alloc(N * 4);
        sAddr_ = heap.alloc(N * 4);
        partials_ = heap.alloc(N * 16 * 4);
        partialsT_ = heap.alloc(12 * N * 4);
        uploadFloats(mem, aAddr_, a_);
        uploadFloats(mem, pAddr_, p_);
        uploadFloats(mem, rAddr_, r_);
    }

    std::string
    check(const MainMemory &mem) const override
    {
        std::vector<float> q(N), s(N);
        hostMatvec(a_, p_, q, N, N);
        hostMatvec(at_, r_, s, N, N);
        std::string e =
            compareFloats(q, downloadFloats(mem, qAddr_, N));
        if (!e.empty())
            return "q: " + e;
        e = compareFloats(s, downloadFloats(mem, sAddr_, N));
        return e.empty() ? "" : "s: " + e;
    }

    GpuProgram
    gpuProgram() override
    {
        GpuProgram p;
        p.dispatches.push_back(
            {N, [this](Assembler &as) {
                 gpuDotRow(as, aAddr_, pAddr_, qAddr_, N);
             }});
        p.dispatches.push_back(
            {N, [this](Assembler &as) {
                 gpuDotCol(as, aAddr_, rAddr_, sAddr_, N, N);
             }});
        return p;
    }

  protected:
    void
    emit(SpmdBuilder &b) override
    {
        MatvecSpec s1;
        s1.mat = aAddr_;
        s1.vecIn = pAddr_;
        s1.out = qAddr_;
        s1.partials = partials_;
        s1.rows = N;
        s1.cols = N;
        emitMatvecPhase(b, s1);
        MatvecTSpec s2;
        s2.mat = aAddr_;
        s2.vecIn = rAddr_;
        s2.out = sAddr_;
        s2.partials = partialsT_;
        s2.rows = N;
        s2.cols = N;
        emitMatvecTransposePhase(b, s2);
    }

  private:
    std::vector<float> a_, at_, p_, r_;
    Addr aAddr_ = 0, pAddr_ = 0, rAddr_ = 0, qAddr_ = 0,
         sAddr_ = 0, partials_ = 0, partialsT_ = 0;
};

// --- mvt: x1 += A y1 ; x2 += A^T y2 ------------------------------------------

class Mvt final : public Benchmark
{
  public:
    std::string name() const override { return "mvt"; }
    std::string description() const override
    {
        return "Mat-vec (A y1) and transpose (A^T y2)";
    }
    int kernelCount() const override { return 1; }

    void
    setup(MainMemory &mem, Heap &heap) override
    {
        a_ = randomFloats(static_cast<size_t>(N) * N, 31);
        y1_ = randomFloats(N, 32);
        y2_ = randomFloats(N, 33);
        x1_ = randomFloats(N, 34);
        x2_ = randomFloats(N, 35);
        at_ = transposed(a_, N, N);   // host reference only
        aAddr_ = heap.alloc(N * N * 4);
        y1Addr_ = heap.alloc(N * 4);
        y2Addr_ = heap.alloc(N * 4);
        x1Addr_ = heap.alloc(N * 4);
        x2Addr_ = heap.alloc(N * 4);
        partials_ = heap.alloc(N * 16 * 4);
        partialsT_ = heap.alloc(12 * N * 4);
        uploadFloats(mem, aAddr_, a_);
        uploadFloats(mem, y1Addr_, y1_);
        uploadFloats(mem, y2Addr_, y2_);
        uploadFloats(mem, x1Addr_, x1_);
        uploadFloats(mem, x2Addr_, x2_);
    }

    std::string
    check(const MainMemory &mem) const override
    {
        std::vector<float> x1 = x1_, x2 = x2_;
        hostMatvec(a_, y1_, x1, N, N, true);
        hostMatvec(at_, y2_, x2, N, N, true);
        std::string e =
            compareFloats(x1, downloadFloats(mem, x1Addr_, N));
        if (!e.empty())
            return "x1: " + e;
        e = compareFloats(x2, downloadFloats(mem, x2Addr_, N));
        return e.empty() ? "" : "x2: " + e;
    }

    GpuProgram
    gpuProgram() override
    {
        GpuProgram p;
        p.dispatches.push_back(
            {N, [this](Assembler &as) {
                 gpuDotRow(as, aAddr_, y1Addr_, x1Addr_, N, 1.0f, true);
             }});
        p.dispatches.push_back(
            {N, [this](Assembler &as) {
                 gpuDotCol(as, aAddr_, y2Addr_, x2Addr_, N, N, true);
             }});
        return p;
    }

  protected:
    void
    emit(SpmdBuilder &b) override
    {
        MatvecSpec s1;
        s1.mat = aAddr_;
        s1.vecIn = y1Addr_;
        s1.out = x1Addr_;
        s1.partials = partials_;
        s1.rows = N;
        s1.cols = N;
        s1.accumulate = true;
        emitMatvecPhase(b, s1);
        MatvecTSpec s2;
        s2.mat = aAddr_;
        s2.vecIn = y2Addr_;
        s2.out = x2Addr_;
        s2.partials = partialsT_;
        s2.rows = N;
        s2.cols = N;
        s2.accumulate = true;
        emitMatvecTransposePhase(b, s2);
    }

  private:
    std::vector<float> a_, at_, y1_, y2_, x1_, x2_;
    Addr aAddr_ = 0, y1Addr_ = 0, y2Addr_ = 0, x1Addr_ = 0,
         x2Addr_ = 0, partials_ = 0, partialsT_ = 0;
};

// --- gesummv: y = alpha A x + beta B x ----------------------------------------

class Gesummv final : public Benchmark
{
  public:
    std::string name() const override { return "gesummv"; }
    std::string description() const override
    {
        return "Matrix vector (y = alpha A x + beta B x)";
    }
    int kernelCount() const override { return 1; }

    void
    setup(MainMemory &mem, Heap &heap) override
    {
        a_ = randomFloats(static_cast<size_t>(N) * N, 41);
        bmat_ = randomFloats(static_cast<size_t>(N) * N, 42);
        x_ = randomFloats(N, 43);
        aAddr_ = heap.alloc(N * N * 4);
        bAddr_ = heap.alloc(N * N * 4);
        xAddr_ = heap.alloc(N * 4);
        t1Addr_ = heap.alloc(N * 4);
        t2Addr_ = heap.alloc(N * 4);
        yAddr_ = heap.alloc(N * 4);
        partials_ = heap.alloc(N * 16 * 4);
        uploadFloats(mem, aAddr_, a_);
        uploadFloats(mem, bAddr_, bmat_);
        uploadFloats(mem, xAddr_, x_);
    }

    std::string
    check(const MainMemory &mem) const override
    {
        std::vector<float> t1(N), t2(N), y(N);
        hostMatvec(a_, x_, t1, N, N);
        hostMatvec(bmat_, x_, t2, N, N);
        for (int i = 0; i < N; ++i)
            y[static_cast<size_t>(i)] =
                alpha_ * t1[static_cast<size_t>(i)] +
                beta_ * t2[static_cast<size_t>(i)];
        return compareFloats(y, downloadFloats(mem, yAddr_, N));
    }

    GpuProgram
    gpuProgram() override
    {
        GpuProgram p;
        p.dispatches.push_back(
            {N, [this](Assembler &as) {
                 gpuDotRow(as, aAddr_, xAddr_, t1Addr_, N);
             }});
        p.dispatches.push_back(
            {N, [this](Assembler &as) {
                 gpuDotRow(as, bAddr_, xAddr_, t2Addr_, N);
             }});
        p.dispatches.push_back({N, [this](Assembler &as) {
                                    emitCombine(as, gpuTidReg, 1, true);
                                }});
        return p;
    }

  protected:
    void
    emit(SpmdBuilder &b) override
    {
        MatvecSpec s1;
        s1.mat = aAddr_;
        s1.vecIn = xAddr_;
        s1.out = t1Addr_;
        s1.partials = partials_;
        s1.rows = N;
        s1.cols = N;
        emitMatvecPhase(b, s1);
        MatvecSpec s2 = s1;
        s2.mat = bAddr_;
        s2.out = t2Addr_;
        emitMatvecPhase(b, s2);
        // Combine phase: y[i] = alpha t1[i] + beta t2[i].
        b.mimdPhase([this, &b](Assembler &as) {
            int W = b.activeCores();
            as.mv(x(5), rCoreId);
            emitCombine(as, x(5), W, false);
        });
    }

  private:
    /** y[i] = alpha t1 + beta t2 for i = start, start+step, ... */
    void
    emitCombine(Assembler &as, RegIdx start, int step, bool one_elem)
    {
        emitFConst(as, f(3), alpha_, x(9));
        emitFConst(as, f(4), beta_, x(9));
        as.la(x(6), t1Addr_);
        as.la(x(7), t2Addr_);
        as.la(x(8), yAddr_);
        if (one_elem) {
            // GPU: one element per thread.
            emitAffine(as, x(10), x(6), start, 4, x(9));
            as.flw(f(0), x(10), 0);
            emitAffine(as, x(10), x(7), start, 4, x(9));
            as.flw(f(1), x(10), 0);
            as.fmul(f(0), f(0), f(3));
            as.fmul(f(1), f(1), f(4));
            as.fadd(f(0), f(0), f(1));
            emitAffine(as, x(10), x(8), start, 4, x(9));
            as.fsw(f(0), x(10), 0);
            return;
        }
        as.li(x(11), N);
        Loop l(as, start, x(11), step);
        {
            emitAffine(as, x(10), x(6), start, 4, x(9));
            as.flw(f(0), x(10), 0);
            emitAffine(as, x(10), x(7), start, 4, x(9));
            as.flw(f(1), x(10), 0);
            as.fmul(f(0), f(0), f(3));
            as.fmul(f(1), f(1), f(4));
            as.fadd(f(0), f(0), f(1));
            emitAffine(as, x(10), x(8), start, 4, x(9));
            as.fsw(f(0), x(10), 0);
        }
        l.end();
    }

    const float alpha_ = 1.5f;
    const float beta_ = 1.2f;
    std::vector<float> a_, bmat_, x_;
    Addr aAddr_ = 0, bAddr_ = 0, xAddr_ = 0, t1Addr_ = 0, t2Addr_ = 0,
         yAddr_ = 0, partials_ = 0;
};

} // namespace

std::unique_ptr<Benchmark> makeAtax() { return std::make_unique<Atax>(); }
std::unique_ptr<Benchmark> makeBicg() { return std::make_unique<Bicg>(); }
std::unique_ptr<Benchmark> makeMvt() { return std::make_unique<Mvt>(); }
std::unique_ptr<Benchmark>
makeGesummv()
{
    return std::make_unique<Gesummv>();
}

} // namespace rockcress
