/**
 * @file
 * Shared kernel-family emitters. Each emitter specializes its code
 * for the active configuration (Table 3):
 *  - NV: direct global word loads (plain manycore),
 *  - NV_PF / PCV_PF: self wide loads staged through the frame queue,
 *  - V4 / V16 (+PCV/+LL): scalar-core wide loads feeding microthreads.
 *
 * The matvec family uses cooperative rows with Group loads (the
 * paper's second work-division schema, Section 2.3.2); the matmul
 * family uses per-lane rows with Single loads (the first schema).
 */

#ifndef ROCKCRESS_KERNELS_EMITTERS_HH
#define ROCKCRESS_KERNELS_EMITTERS_HH

#include "compiler/codegen.hh"

namespace rockcress
{

/** Materialize a float constant into an fp register. */
void emitFConst(Assembler &as, RegIdx freg, float value, RegIdx tmp);

/** Zero an fp register (fcvt.s.w f, x0). */
void emitFZero(Assembler &as, RegIdx freg);

/**
 * out[i] (+)= alpha * dot(M[i, :], x)  for i in [0, rows).
 *
 * Vector configurations process each row cooperatively: Group loads
 * scatter consecutive row/vector chunks across lanes, each lane
 * accumulates a partial, and a trailing MIMD phase reduces the
 * partials (out[i] from partials[i*16 + lane]).
 */
struct MatvecSpec
{
    Addr mat = 0;
    Addr vecIn = 0;     ///< 0 selects self-dot: dot(M[i,:], M[i,:]).
    Addr out = 0;
    Addr partials = 0;  ///< rows x 16 floats of scratch (vector cfgs).
    int rows = 0;
    int cols = 0;       ///< Must divide by the chunking (multiple of 128).
    bool accumulate = false;
    float alpha = 1.0f;
};

void emitMatvecPhase(SpmdBuilder &b, const MatvecSpec &s);

/**
 * out[j] (+)= sum_i M[i][j] * x[i] with M stored row-major — the
 * transpose-side matrix-vector product of atax/bicg/mvt.
 *
 * This is the access pattern where wide loads pay off most (Section
 * 6.6): the manycore baselines walk columns — NV with strided word
 * loads, NV_PF with narrow 4-word slices that underuse cache lines —
 * while vector groups stream whole rows with Group loads, accumulate
 * per-lane column partials in their scratchpads, and reduce at the
 * end.
 */
struct MatvecTSpec
{
    Addr mat = 0;       ///< rows x cols, row-major.
    Addr vecIn = 0;     ///< x, length rows.
    Addr out = 0;       ///< y, length cols.
    Addr partials = 0;  ///< numGroups x cols floats (vector cfgs).
    int rows = 0;
    int cols = 0;       ///< Multiple of 128.
    bool accumulate = false;
};

void emitMatvecTransposePhase(SpmdBuilder &b, const MatvecTSpec &s);

/**
 * C[i][j] = alpha * dot(A[i, :], BT[j, :]) + beta * C[i][j].
 * BT is the transposed right operand (Table 2's transpose mem-opt).
 * Vector configurations deal VLEN-row chunks to groups; each lane
 * owns one row and receives Single loads.
 */
struct MatmulSpec
{
    Addr a = 0;
    Addr bt = 0;
    Addr c = 0;
    int n = 0;   ///< Rows of C/A; must be a multiple of 16.
    int m = 0;   ///< Columns of C = rows of BT.
    int k = 0;   ///< Depth; must be a multiple of 16.
    float alpha = 1.0f;
    float beta = 0.0f;
    /** Write C transposed (C[j][i]); lets chained multiplies consume
     * a runtime-computed right operand without a transpose pass. */
    bool storeTransposed = false;
};

void emitMatmulPhase(SpmdBuilder &b, const MatmulSpec &s);

/**
 * Row-wise elementwise transform:
 *   out[i][j] = (in[i][j] - sub[i]) * scale[i]
 * with sub/scale optional (0 address = identity). Used by corr/covar
 * mean-centering and normalization. Rows are dealt per worker (MIMD)
 * or per lane (vector, Single loads).
 */
struct RowMapSpec
{
    Addr in = 0;
    Addr out = 0;       ///< May equal in (in-place).
    Addr sub = 0;       ///< Per-row subtrahend array (optional).
    Addr scale = 0;     ///< Per-row scale array (optional).
    int rows = 0;
    int cols = 0;       ///< Multiple of 16.
};

void emitRowMapPhase(SpmdBuilder &b, const RowMapSpec &s);

} // namespace rockcress

#endif // ROCKCRESS_KERNELS_EMITTERS_HH
