#include "kernels/common.hh"

#include <cmath>
#include <sstream>

#include "sim/log.hh"

namespace rockcress
{

Addr
Heap::alloc(Addr bytes, Addr align)
{
    Addr base = (next_ + align - 1) / align * align;
    next_ = base + bytes;
    if (next_ > capacity_)
        fatal("heap: out of global memory (", next_, " > ", capacity_,
              ")");
    return AddrMap::globalBase + base;
}

void
uploadFloats(MainMemory &mem, Addr base, const std::vector<float> &data)
{
    for (size_t i = 0; i < data.size(); ++i)
        mem.writeFloat(base + static_cast<Addr>(i) * wordBytes, data[i]);
}

std::vector<float>
downloadFloats(const MainMemory &mem, Addr base, size_t count)
{
    std::vector<float> out(count);
    for (size_t i = 0; i < count; ++i)
        out[i] = mem.readFloat(base + static_cast<Addr>(i) * wordBytes);
    return out;
}

void
uploadWords(MainMemory &mem, Addr base, const std::vector<Word> &data)
{
    for (size_t i = 0; i < data.size(); ++i)
        mem.writeWord(base + static_cast<Addr>(i) * wordBytes, data[i]);
}

std::vector<Word>
downloadWords(const MainMemory &mem, Addr base, size_t count)
{
    std::vector<Word> out(count);
    for (size_t i = 0; i < count; ++i)
        out[i] = mem.readWord(base + static_cast<Addr>(i) * wordBytes);
    return out;
}

std::vector<float>
randomFloats(size_t count, std::uint64_t seed, float lo, float hi)
{
    Rng rng(seed);
    std::vector<float> out(count);
    for (float &v : out)
        v = lo + (hi - lo) * rng.uniform();
    return out;
}

std::string
compareFloats(const std::vector<float> &expect,
              const std::vector<float> &got, float rel_tol, float abs_tol)
{
    if (expect.size() != got.size())
        return "size mismatch";
    for (size_t i = 0; i < expect.size(); ++i) {
        float e = expect[i], g = got[i];
        float err = std::fabs(e - g);
        if (err > abs_tol && err > rel_tol * std::fabs(e)) {
            std::ostringstream os;
            os << "mismatch at [" << i << "]: expected " << e << ", got "
               << g;
            return os.str();
        }
    }
    return "";
}

void
Benchmark::planGroups(Machine &machine, const BenchConfig &cfg)
{
    if (!cfg.isVector())
        return;
    int tpg = cfg.groupSize + 1;
    int groups = machine.numCores() / tpg;
    for (int g = 0; g < groups; ++g) {
        GroupPlan plan;
        for (int i = 0; i < tpg; ++i)
            plan.chain.push_back(g * tpg + i);
        machine.planGroup(plan);
    }
}

std::shared_ptr<const Program>
Benchmark::prepare(Machine &machine, const BenchConfig &cfg)
{
    Heap heap(machine.params().heapBytes);
    setup(machine.mem(), heap);
    SpmdBuilder b(name() + "_" + cfg.name, cfg, machine.params());
    emit(b);
    auto prog = std::make_shared<const Program>(b.finish());
    machine.loadAll(prog);
    planGroups(machine, cfg);
    return prog;
}

} // namespace rockcress

#include "kernels/bench_decls.hh"

namespace rockcress
{

std::vector<std::string>
suiteNames()
{
    // Table 2 order.
    return {"2dconv", "2mm",     "3dconv",   "3mm",  "atax",
            "bicg",   "corr",    "covar",    "fdtd-2d", "gemm",
            "gesummv", "gramschm", "mvt",    "syr2k", "syrk"};
}

std::unique_ptr<Benchmark>
makeBenchmark(const std::string &name)
{
    if (name == "2dconv") return makeConv2d();
    if (name == "2mm") return make2mm();
    if (name == "3dconv") return makeConv3d();
    if (name == "3mm") return make3mm();
    if (name == "atax") return makeAtax();
    if (name == "bicg") return makeBicg();
    if (name == "corr") return makeCorr();
    if (name == "covar") return makeCovar();
    if (name == "fdtd-2d") return makeFdtd2d();
    if (name == "gemm") return makeGemm();
    if (name == "gesummv") return makeGesummv();
    if (name == "gramschm") return makeGramschm();
    if (name == "mvt") return makeMvt();
    if (name == "syr2k") return makeSyr2k();
    if (name == "syrk") return makeSyrk();
    if (name == "bfs") return makeBfs();
    fatal("unknown benchmark '", name, "'");
}

std::vector<std::unique_ptr<Benchmark>>
makeSuite()
{
    std::vector<std::unique_ptr<Benchmark>> suite;
    for (const std::string &n : suiteNames())
        suite.push_back(makeBenchmark(n));
    return suite;
}

} // namespace rockcress
