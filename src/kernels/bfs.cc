/**
 * @file
 * bfs: level-synchronized breadth-first search over a synthetic
 * constant-degree graph (Section 6.6's irregular workload). The
 * manycore version branches freely; the vector version must ship
 * adjacency rows through frames, gather distances with word loads,
 * and squash non-frontier work with predication — exactly the
 * overheads that make a standard vector machine a poor fit.
 */

#include <queue>

#include "kernels/bench_decls.hh"
#include "kernels/emitters.hh"

namespace rockcress
{

namespace
{

constexpr int bV = 1024;   ///< Vertices.
constexpr int bD = 8;      ///< Constant out-degree.
constexpr Word unvisited = 0xffffffffu;

class Bfs final : public Benchmark
{
  public:
    std::string name() const override { return "bfs"; }
    std::string description() const override
    {
        return "Breadth-first search (irregular)";
    }
    int kernelCount() const override { return 1; }

    void
    setup(MainMemory &mem, Heap &heap) override
    {
        // Synthetic graph: deterministic pseudo-random neighbors with
        // a ring edge to guarantee connectivity.
        Rng rng(4242);
        adj_.resize(static_cast<size_t>(bV) * bD);
        for (int v = 0; v < bV; ++v) {
            adj_[static_cast<size_t>(v) * bD] =
                static_cast<Word>((v + 1) % bV);
            for (int e = 1; e < bD; ++e)
                adj_[static_cast<size_t>(v) * bD + e] =
                    static_cast<Word>(rng.below(bV));
        }
        hostBfs();
        adjAddr_ = heap.alloc(bV * bD * 4);
        distAddr_ = heap.alloc(bV * 4);
        uploadWords(mem, adjAddr_, adj_);
        std::vector<Word> dist(bV, unvisited);
        dist[0] = 0;
        uploadWords(mem, distAddr_, dist);
    }

    std::string
    check(const MainMemory &mem) const override
    {
        auto got = downloadWords(mem, distAddr_, bV);
        for (int v = 0; v < bV; ++v) {
            if (got[static_cast<size_t>(v)] !=
                hostDist_[static_cast<size_t>(v)]) {
                return "dist[" + std::to_string(v) + "] = " +
                       std::to_string(got[static_cast<size_t>(v)]) +
                       ", expected " +
                       std::to_string(
                           hostDist_[static_cast<size_t>(v)]);
            }
        }
        return "";
    }

    /** The paper does not evaluate bfs on the GPU. */
    GpuProgram gpuProgram() override { return {}; }

  protected:
    void
    emit(SpmdBuilder &b) override
    {
        if (b.config().isVector())
            emitVector(b);
        else
            emitMimd(b);
    }

  private:
    void
    hostBfs()
    {
        hostDist_.assign(bV, unvisited);
        hostDist_[0] = 0;
        std::queue<int> q;
        q.push(0);
        levels_ = 0;
        while (!q.empty()) {
            int v = q.front();
            q.pop();
            for (int e = 0; e < bD; ++e) {
                int w = static_cast<int>(
                    adj_[static_cast<size_t>(v) * bD + e]);
                if (hostDist_[static_cast<size_t>(w)] == unvisited) {
                    hostDist_[static_cast<size_t>(w)] =
                        hostDist_[static_cast<size_t>(v)] + 1;
                    q.push(w);
                }
            }
        }
        for (Word d : hostDist_)
            levels_ = std::max(levels_, static_cast<int>(d));
    }

    void
    emitMimd(SpmdBuilder &b)
    {
        // One level per phase; concurrent same-level relaxations are
        // benign (all writers store the same value).
        for (int level = 0; level < levels_; ++level) {
            b.mimdPhase([&, level](Assembler &as) {
                int W = b.activeCores();
                as.la(x(6), adjAddr_);
                as.la(x(7), distAddr_);
                as.li(x(8), level);
                as.li(x(9), level + 1);
                as.mv(x(5), rCoreId);
                as.li(x(10), bV);
                Loop vl(as, x(5), x(10), W);
                {
                    emitAffine(as, x(11), x(7), x(5), 4, x(13));
                    as.lw(x(12), x(11), 0);
                    Label skip = as.newLabel();
                    as.bne(x(12), x(8), skip);
                    emitAffine(as, x(14), x(6), x(5), bD * 4, x(13));
                    for (int e = 0; e < bD; ++e) {
                        as.lw(x(15), x(14), 4 * e);   // neighbor id
                        emitAffine(as, x(16), x(7), x(15), 4, x(13));
                        as.lw(x(17), x(16), 0);       // its distance
                        Label visited = as.newLabel();
                        as.addi(x(18), x(17), 1);
                        as.bne(x(18), regZero, visited);
                        as.sw(x(9), x(16), 0);
                        as.bind(visited);
                    }
                    as.bind(skip);
                }
                vl.end();
            });
        }
    }

    void
    emitVector(SpmdBuilder &b)
    {
        const BenchConfig &cfg = b.config();
        int VLEN = cfg.groupSize;
        int G = b.numGroups();
        const int frame_words = bD;
        const int num_frames = 8;

        for (int level = 0; level < levels_; ++level) {
            Label init = b.declareMicrothread();
            Label body = b.declareMicrothread();

            b.defineMicrothread(init, [=, this](Assembler &as) {
                as.csrr(x(5), Csr::GroupTid);
                as.csrr(x(6), Csr::CoreId);
                as.li(x(7), VLEN + 1);
                as.div(x(6), x(6), x(7));
                emitScale(as, x(9), x(6), VLEN, x(7));
                as.add(x(9), x(9), x(5));        // lane vertex
                as.li(x(17), G * VLEN);          // vertex step
                as.la(x(16), distAddr_);
                as.li(x(8), level);
                as.li(x(15), level + 1);
            });
            b.defineMicrothread(body, [=, this](Assembler &as) {
                as.frameStart(x(13));            // adjacency row
                emitAffine(as, x(10), x(16), x(9), 4, x(11));
                as.lw(x(12), x(10), 0);          // dist[v] gather
                as.predEq(x(12), x(8));          // frontier mask
                for (int e = 0; e < bD; ++e) {
                    as.lw(x(11), x(13), 4 * e);  // neighbor id
                    emitAffine(as, x(10), x(16), x(11), 4, x(12));
                    as.lw(x(12), x(10), 0);      // dist[w] gather
                    // sel = visited ? dist[w] : level + 1, branchless.
                    as.addi(x(11), x(12), 1);
                    as.sltu(x(11), regZero, x(11));   // visited flag
                    as.sub(x(14), x(12), x(15));
                    as.mul(x(14), x(14), x(11));
                    as.add(x(14), x(15), x(14));
                    as.sw(x(14), x(10), 0);
                }
                as.predEq(regZero, regZero);
                as.add(x(9), x(9), x(17));       // next vertex
                as.remem();
            });

            b.vectorPhase(frame_words, num_frames, [=, &b,
                                                    this](Assembler &as) {
                as.vissue(init);
                DaeStreamRegs regs;
                FrameRotator rot(as, regs.off, frame_words * 4,
                                 num_frames, x(27));
                rot.emitInit();
                as.mv(x(7), rGroupId);
                as.li(x(8), bV / VLEN);
                Loop chunks(as, x(7), x(8), G);
                {
                    as.la(x(9), adjAddr_);
                    emitAffine(as, x(10), x(9), x(7), VLEN * bD * 4,
                               x(11));
                    DaeStreamSpec spec;
                    spec.iters = 1;
                    spec.frameBytes = frame_words * 4;
                    spec.numFrames = num_frames;
                    spec.bodyMt = body;
                    spec.fill = [=](Assembler &a, RegIdx off) {
                        for (int l = 0; l < VLEN; ++l) {
                            RegIdx areg = x(10);
                            if (l > 0) {
                                a.addi(x(12), x(10), l * bD * 4);
                                areg = x(12);
                            }
                            a.vload(areg, off, l, bD,
                                    VloadVariant::Single);
                        }
                    };
                    emitScalarStream(as, spec, rot, regs);
                }
                chunks.end();
            });
        }
    }

    std::vector<Word> adj_;
    std::vector<Word> hostDist_;
    int levels_ = 0;

    Addr adjAddr_ = 0, distAddr_ = 0;
};

} // namespace

std::unique_ptr<Benchmark> makeBfs() { return std::make_unique<Bfs>(); }

} // namespace rockcress
