/**
 * @file
 * Small shared emitters for GPU lane programs (element-per-thread,
 * as the PolyBench/GPU CUDA kernels are written).
 */

#ifndef ROCKCRESS_KERNELS_GPU_HELPERS_HH
#define ROCKCRESS_KERNELS_GPU_HELPERS_HH

#include "kernels/common.hh"
#include "kernels/emitters.hh"

namespace rockcress
{

/**
 * Lane program: out[tid] = alpha * dot(M[tid, :], x) (+ out[tid]).
 * One thread per row.
 */
inline void
gpuDotRow(Assembler &as, Addr mat, Addr vec, Addr out, int cols,
          float alpha = 1.0f, bool accumulate = false)
{
    as.la(x(5), mat);
    emitAffine(as, x(6), x(5), gpuTidReg, cols * 4, x(7));
    as.la(x(8), vec);
    emitFZero(as, f(0));
    as.li(x(9), 0);
    as.li(x(10), cols);
    Loop kl(as, x(9), x(10), 4);
    for (int u = 0; u < 4; ++u) {
        as.flw(f(1), x(6), 4 * u);
        as.flw(f(2), x(8), 4 * u);
        as.fmadd(f(0), f(1), f(2), f(0));
    }
    as.addi(x(6), x(6), 16);
    as.addi(x(8), x(8), 16);
    kl.end();
    as.la(x(11), out);
    emitAffine(as, x(12), x(11), gpuTidReg, 4, x(7));
    if (alpha != 1.0f) {
        emitFConst(as, f(3), alpha, x(7));
        as.fmul(f(0), f(0), f(3));
    }
    if (accumulate) {
        as.flw(f(2), x(12), 0);
        as.fadd(f(0), f(0), f(2));
    }
    as.fsw(f(0), x(12), 0);
}

/**
 * Lane program: out[tid] (+)= dot(M[:, tid], x) — the transpose-side
 * matvec. One thread per column; consecutive threads touch
 * consecutive words, so the wavefront coalescer merges each row's
 * accesses into full lines (GPUs handle this layout natively).
 */
inline void
gpuDotCol(Assembler &as, Addr mat, Addr vec, Addr out, int rows,
          int cols, bool accumulate = false)
{
    as.la(x(5), mat);
    emitAffine(as, x(6), x(5), gpuTidReg, 4, x(7));  // &M[0][tid]
    as.la(x(8), vec);
    emitFZero(as, f(0));
    as.li(x(9), 0);
    as.li(x(10), rows);
    Loop il(as, x(9), x(10), 1);
    {
        as.flw(f(1), x(6), 0);
        as.flw(f(2), x(8), 0);
        as.fmadd(f(0), f(1), f(2), f(0));
        emitAddImm(as, x(6), x(6), cols * 4, x(7));
        as.addi(x(8), x(8), 4);
    }
    il.end();
    as.la(x(11), out);
    emitAffine(as, x(12), x(11), gpuTidReg, 4, x(7));
    if (accumulate) {
        as.flw(f(2), x(12), 0);
        as.fadd(f(0), f(0), f(2));
    }
    as.fsw(f(0), x(12), 0);
}

/**
 * Lane program: one thread per C element.
 *   C[i][j] = alpha * dot(A[i,:], BT[j,:]) + beta * C[i][j]
 * where tid = i * m + j.
 */
inline void
gpuMatmulElem(Assembler &as, Addr a, Addr bt, Addr c, int m, int k,
              float alpha = 1.0f, float beta = 0.0f)
{
    as.li(x(5), m);
    as.div(x(6), gpuTidReg, x(5));   // i
    as.rem(x(7), gpuTidReg, x(5));   // j
    as.la(x(8), a);
    emitAffine(as, x(9), x(8), x(6), k * 4, x(10));
    as.la(x(8), bt);
    emitAffine(as, x(11), x(8), x(7), k * 4, x(10));
    emitFZero(as, f(0));
    as.li(x(12), 0);
    as.li(x(13), k);
    Loop kl(as, x(12), x(13), 4);
    for (int u = 0; u < 4; ++u) {
        as.flw(f(1), x(9), 4 * u);
        as.flw(f(2), x(11), 4 * u);
        as.fmadd(f(0), f(1), f(2), f(0));
    }
    as.addi(x(9), x(9), 16);
    as.addi(x(11), x(11), 16);
    kl.end();
    as.la(x(8), c);
    emitAffine(as, x(14), x(8), gpuTidReg, 4, x(10));
    if (alpha != 1.0f) {
        emitFConst(as, f(3), alpha, x(10));
        as.fmul(f(0), f(0), f(3));
    }
    if (beta != 0.0f) {
        emitFConst(as, f(4), beta, x(10));
        as.flw(f(2), x(14), 0);
        as.fmul(f(2), f(2), f(4));
        as.fadd(f(0), f(0), f(2));
    }
    as.fsw(f(0), x(14), 0);
}

} // namespace rockcress

#endif // ROCKCRESS_KERNELS_GPU_HELPERS_HH
