/**
 * @file
 * The data NoC: a 2D mesh with XY dimension-order routing, 1-cycle
 * hops, and a configurable link width in words per cycle (Table 1a:
 * "On-Chip Net Width 4 words"; Figure 17c sweeps 1 vs 4).
 *
 * The model is packet-switched store-and-forward: a packet of N words
 * occupies an output link for ceil(N / width) cycles. Queues are
 * unbounded (the real Garnet network is credit-flow-controlled; an
 * unbounded queue keeps the model deadlock-free while preserving the
 * serialization and congestion behaviour the evaluation depends on).
 */

#ifndef ROCKCRESS_NOC_MESH_HH
#define ROCKCRESS_NOC_MESH_HH

#include <deque>
#include <functional>
#include <vector>

#include "mem/msg.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "trace/trace.hh"

namespace rockcress
{

/**
 * A cols x rows router grid. Every router has an attached local node
 * whose sink callback receives packets addressed to it.
 */
class Mesh : public Ticked
{
  public:
    using Sink = std::function<void(const Packet &)>;

    /**
     * @param cols Grid columns.
     * @param rows Grid rows (tiles plus LLC rows).
     * @param width_words Link bandwidth in words per cycle.
     * @param stats Stat scope ("noc.").
     */
    Mesh(int cols, int rows, int width_words, const StatScope &stats);

    /** Node id for grid coordinate (x, y). */
    int nodeId(int x, int y) const { return y * cols_ + x; }

    /** Attach the packet sink for a node. */
    void setSink(int node, Sink sink);

    /** Inject a packet at its source node's router. */
    void send(Packet pkt);

    /** True when no packets are queued or in flight. */
    bool idle() const { return inFlightPackets_ == 0; }

    void tick(Cycle now) override;

    /**
     * Attach (null: detach) the trace sink. While attached, every
     * link launch records a NocLink event (router, direction,
     * occupancy span, words) for link-utilization heatmaps.
     */
    void setTrace(TraceSink *sink) { trace_ = sink; }

    int cols() const { return cols_; }
    int rows() const { return rows_; }

  private:
    /** Output port directions. */
    enum Dir { North = 0, South, East, West, Local, NumDirs };

    struct OutPort
    {
        std::deque<Packet> queue;
        Cycle busyUntil = 0;
    };

    struct Router
    {
        OutPort ports[NumDirs];
        Sink sink;
    };

    struct Transit
    {
        Cycle ready;
        int router;     ///< Destination router (or -1 for local sink).
        int localOf;    ///< If delivering locally, the router id.
        Packet pkt;
    };

    int routeDir(int router, int dst) const;
    void acceptAt(int router, Packet &&pkt);

    int cols_;
    int rows_;
    int width_;
    std::vector<Router> routers_;
    std::vector<Transit> transits_;
    long inFlightPackets_ = 0;

    TraceSink *trace_ = nullptr;

    std::uint64_t *statPackets_;
    std::uint64_t *statWords_;
    std::uint64_t *statWordHops_;
};

} // namespace rockcress

#endif // ROCKCRESS_NOC_MESH_HH
