/**
 * @file
 * The data NoC: a 2D mesh with XY dimension-order routing, 1-cycle
 * hops, and a configurable link width in words per cycle (Table 1a:
 * "On-Chip Net Width 4 words"; Figure 17c sweeps 1 vs 4).
 *
 * The model is packet-switched store-and-forward: a packet of N words
 * occupies an output link for ceil(N / width) cycles. Queues are
 * unbounded (the real Garnet network is credit-flow-controlled; an
 * unbounded queue keeps the model deadlock-free while preserving the
 * serialization and congestion behaviour the evaluation depends on).
 */

#ifndef ROCKCRESS_NOC_MESH_HH
#define ROCKCRESS_NOC_MESH_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/msg.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "trace/trace.hh"

namespace rockcress
{

class SnapshotWriter;
class SnapshotReader;

/**
 * A cols x rows router grid. Every router has an attached local node
 * whose sink callback receives packets addressed to it.
 */
class Mesh : public Ticked
{
  public:
    using Sink = std::function<void(const Packet &)>;

    /**
     * @param cols Grid columns.
     * @param rows Grid rows (tiles plus LLC rows).
     * @param width_words Link bandwidth in words per cycle.
     * @param stats Stat scope ("noc.").
     */
    Mesh(int cols, int rows, int width_words, const StatScope &stats);

    /** Node id for grid coordinate (x, y). */
    int nodeId(int x, int y) const { return y * cols_ + x; }

    /** Attach the packet sink for a node. */
    void setSink(int node, Sink sink);

    /** Inject a packet at its source node's router. */
    void send(Packet pkt);

    /** True when no packets are queued or in flight. */
    bool idle() const { return inFlightPackets_ == 0; }

    void tick(Cycle now) override;
    Cycle nextTickAt(Cycle now) override;

    /**
     * Wire the fast-tick wakeup: send() re-arms the mesh after an
     * idle stretch. Unset (standalone unit tests) is ignored. Sink
     * side-effects are woken by the machine's sink wrappers.
     */
    void setWakeSelf(std::function<void()> wake)
    {
        wakeSelf_ = std::move(wake);
    }

    /**
     * Attach (null: detach) the trace sink. While attached, every
     * link launch records a NocLink event (router, direction,
     * occupancy span, words) for link-utilization heatmaps.
     */
    void setTrace(TraceSink *sink) { trace_ = sink; }

    int cols() const { return cols_; }
    int rows() const { return rows_; }

    /**
     * @name Checkpointing (sim/checkpoint.hh). Saved semantically —
     * per-port queue contents and in-flight transits with their
     * packets inline — because pool handle values are recycling
     * order, internal state no simulated behaviour observes. Restore
     * rebuilds the pool, the active-port bitmap, and the in-flight
     * count from the restored queues and wheel.
     */
    ///@{
    void save(SnapshotWriter &w);
    void restore(SnapshotReader &r);
    ///@}

  private:
    /** Output port directions. */
    enum Dir { North = 0, South, East, West, Local, NumDirs };

    /**
     * A queued hop: the pool handle plus the routing metadata the
     * launch path needs (destination and size), carried inline so
     * forwarding a packet across the fabric never touches the pool
     * until final delivery.
     */
    struct QEnt
    {
        int handle;
        int dst;
        int words;
    };

    /**
     * An output link's queue: a vector ring that recycles its storage
     * when drained, so steady-state push/pop never allocates.
     */
    struct OutPort
    {
        std::vector<QEnt> queue;
        std::size_t head = 0;
        Cycle busyUntil = 0;

        bool empty() const { return head == queue.size(); }
        void push(QEnt e) { queue.push_back(e); }
        QEnt pop()
        {
            QEnt e = queue[head++];
            if (head == queue.size()) {
                queue.clear();
                head = 0;
            }
            return e;
        }
    };

    struct Router
    {
        OutPort ports[NumDirs];
        Sink sink;
    };

    struct Transit
    {
        Cycle ready;
        int router;     ///< Destination router (or -1 for local sink).
        int localOf;    ///< If delivering locally, the router id.
        QEnt ent;       ///< Pool handle + inline routing metadata.
    };

    /** XY routing arithmetic; builds dirTable_ at construction. */
    int computeDir(int router, int dst) const;
    /** Table-lookup routing decision (== computeDir by construction). */
    int routeDir(int router, int dst) const;
    void acceptAt(int router, QEnt ent);

    /** @name Packet pool.
     * Packets live in pool_ from send() to sink delivery; queues and
     * transits move 4-byte handles instead of ~200-byte packets (the
     * launch path runs tens of times per cycle — this is the mesh's
     * hottest data motion). Handle recycling order is internal state
     * only; no simulated behaviour observes it.
     */
    ///@{
    int allocPacket(Packet &&pkt);
    void freePacket(int handle) { freeList_.push_back(handle); }
    ///@}

    /** Grow the wheel so a span of `need` cycles fits (rare). */
    void growWheel(std::size_t need);

    int cols_;
    int rows_;
    int width_;
    std::vector<Router> routers_;
    /**
     * Timing wheel of in-flight hops, bucketed by ready % size. The
     * mesh ticks every cycle while packets are in flight, so the
     * bucket visited at cycle `now` holds exactly the transits with
     * ready == now (spans are kept < size by growWheel), in insertion
     * order — the same completion order a linear in-flight list would
     * produce, without move-compacting every live packet every cycle.
     */
    std::vector<std::vector<Transit>> wheel_;
    std::size_t wheelMask_ = 63;   ///< wheel_.size() - 1 (power of two).
    int widthShift_ = -1;          ///< log2(width_) when a power of two.
    std::vector<Packet> pool_;      ///< Handle-indexed packet storage.
    std::vector<int> freeList_;     ///< Recyclable pool slots.
    /**
     * Bitmap of ports with queued packets, bit index router * NumDirs
     * + dir. Iterating set bits in ascending order visits ports in
     * exactly the order the full router x direction sweep would
     * (transit insertion order — and therefore same-cycle arrival
     * order downstream — depends on it). A port's bit is set on its
     * queue's empty->nonempty edge and cleared when the queue drains.
     */
    std::vector<std::uint64_t> activeBits_;
    /**
     * Precomputed XY routing: dirTable_[router * nodes + dst] is the
     * output direction, hopTable_[router * NumDirs + dir] the
     * neighbor router entered through it (-1 off-grid). The grid is
     * at most a few thousand entries, so baking the div/mod routing
     * arithmetic into tables at construction keeps the per-hop
     * forwarding path to two loads.
     */
    std::vector<std::uint8_t> dirTable_;
    std::vector<int> hopTable_;
    long inFlightPackets_ = 0;

    TraceSink *trace_ = nullptr;
    std::function<void()> wakeSelf_;

    std::uint64_t *statPackets_;
    std::uint64_t *statWords_;
    std::uint64_t *statWordHops_;
};

} // namespace rockcress

#endif // ROCKCRESS_NOC_MESH_HH
