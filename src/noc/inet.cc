#include "noc/inet.hh"

#include <bit>

#include "sim/log.hh"

namespace rockcress
{

Inet::Inet(int num_cores, int queue_capacity, const StatScope &stats)
    : capacity_(queue_capacity)
{
    if (num_cores <= 0 || queue_capacity <= 0)
        fatal("inet: invalid parameters");
    nodes_.resize(static_cast<size_t>(num_cores));
    busyBits_.resize((static_cast<size_t>(num_cores) + 63) / 64, 0);
    statSends_ = stats.counter("sends");
}

void
Inet::configureChain(const std::vector<CoreId> &chain)
{
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
        Node &n = nodes_.at(static_cast<size_t>(chain[i]));
        if (n.downstream != -1)
            fatal("inet: core ", chain[i], " already in a chain");
        n.downstream = chain[i + 1];
        nodes_.at(static_cast<size_t>(chain[i + 1])).upstream = chain[i];
    }
}

void
Inet::clearCore(CoreId core)
{
    Node &n = nodes_.at(static_cast<size_t>(core));
    if (n.downstream != -1)
        nodes_[static_cast<size_t>(n.downstream)].upstream = -1;
    n.downstream = -1;
    n.upstream = -1;
    n.queue.clear();
    if (n.linkBusy) {
        --busyLinks_;
        auto i = static_cast<size_t>(core);
        busyBits_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
    }
    n.linkBusy = false;
    n.sendWaiter = false;
}

bool
Inet::hasDownstream(CoreId core) const
{
    return nodes_.at(static_cast<size_t>(core)).downstream != -1;
}

bool
Inet::canSend(CoreId core) const
{
    const Node &n = nodes_.at(static_cast<size_t>(core));
    if (n.downstream == -1 || n.linkBusy)
        return false;
    const Node &down = nodes_[static_cast<size_t>(n.downstream)];
    return static_cast<int>(down.queue.size()) < capacity_;
}

void
Inet::send(CoreId core, const InetMsg &msg)
{
    Node &n = nodes_.at(static_cast<size_t>(core));
    if (!canSend(core))
        panic("inet: send from core ", core, " without space");
    n.linkBusy = true;
    n.sendWaiter = false;   // A core that sends is not blocked on it.
    n.inFlight = msg;
    auto i = static_cast<size_t>(core);
    busyBits_[i / 64] |= std::uint64_t{1} << (i % 64);
    // The message needs a delivery tick; while any link is busy,
    // nextTickAt() keeps the inet scheduled every cycle, so only the
    // idle->busy edge has to re-arm it.
    if (++busyLinks_ == 1 && wakeSelf_)
        wakeSelf_();
    *statSends_ += 1;
    if (trace_ != nullptr) {
        TraceEvent ev;
        ev.cycle = static_cast<std::uint32_t>(trace_->now());
        ev.tile = static_cast<std::uint16_t>(core);
        ev.kind = static_cast<std::uint8_t>(TraceKind::InetHop);
        ev.sub = static_cast<std::uint8_t>(msg.kind);
        ev.pc = msg.pc;
        ev.a = static_cast<std::uint32_t>(n.downstream);
        ev.b = 0;
        trace_->record(ev);
    }
}

bool
Inet::hasMsg(CoreId core) const
{
    return !nodes_.at(static_cast<size_t>(core)).queue.empty();
}

const InetMsg &
Inet::front(CoreId core) const
{
    const Node &n = nodes_.at(static_cast<size_t>(core));
    if (n.queue.empty())
        panic("inet: front() on empty queue of core ", core);
    return n.queue.front();
}

void
Inet::pop(CoreId core)
{
    Node &n = nodes_.at(static_cast<size_t>(core));
    if (n.queue.empty())
        panic("inet: pop() on empty queue of core ", core);
    n.queue.pop_front();
    // The freed slot may unblock the upstream sender, but only when
    // the queue was full (canSend() compares the size against the
    // capacity, so this pop is the only one that changes its value)
    // and only if that sender actually blocked on canSend().
    if (n.upstream != -1 && wakeCore_ &&
        static_cast<int>(n.queue.size()) == capacity_ - 1) {
        Node &up = nodes_[static_cast<size_t>(n.upstream)];
        if (up.sendWaiter) {
            up.sendWaiter = false;
            wakeCore_(n.upstream);
        }
    }
}

int
Inet::queueSize(CoreId core) const
{
    return static_cast<int>(nodes_.at(static_cast<size_t>(core))
                                .queue.size());
}

void
Inet::tick(Cycle)
{
    // Deliver in-flight messages: one register write per link per
    // cycle. Only busy links are visited, in ascending node order —
    // the order the full sweep would deliver in. No sends happen
    // during delivery, so iterating a snapshot of each word is safe.
    for (size_t w = 0; w < busyBits_.size(); ++w) {
        std::uint64_t bits = busyBits_[w];
        busyBits_[w] = 0;
        while (bits != 0) {
            auto b = static_cast<unsigned>(std::countr_zero(bits));
            bits &= bits - 1;
            size_t i = w * 64 + b;
            Node &n = nodes_[i];
            Node &down = nodes_[static_cast<size_t>(n.downstream)];
            if (static_cast<int>(down.queue.size()) >= capacity_)
                panic("inet: downstream queue overflow");
            down.queue.push_back(n.inFlight);
            n.linkBusy = false;
            --busyLinks_;
            if (wakeCore_) {
                // The receiver gained a message — an edge only when
                // the queue was empty (a sleeping core with a backlog
                // is blocked on something else with its own wake).
                // The sender's link freed — canSend() turns true only
                // when the queue it feeds still has room, and matters
                // only to a sender that blocked on it.
                if (down.queue.size() == 1)
                    wakeCore_(n.downstream);
                if (n.sendWaiter &&
                    static_cast<int>(down.queue.size()) < capacity_) {
                    n.sendWaiter = false;
                    wakeCore_(static_cast<CoreId>(i));
                }
            }
        }
    }
}

Cycle
Inet::nextTickAt(Cycle now)
{
    // A tick with no in-flight messages is a no-op; send() re-arms.
    return busyLinks_ > 0 ? now + 1 : kNeverTick;
}

bool
Inet::idle() const
{
    for (const Node &n : nodes_) {
        if (n.linkBusy || !n.queue.empty())
            return false;
    }
    return true;
}

} // namespace rockcress
