#include "noc/inet.hh"

#include "sim/log.hh"

namespace rockcress
{

Inet::Inet(int num_cores, int queue_capacity, const StatScope &stats)
    : capacity_(queue_capacity)
{
    if (num_cores <= 0 || queue_capacity <= 0)
        fatal("inet: invalid parameters");
    nodes_.resize(static_cast<size_t>(num_cores));
    statSends_ = stats.counter("sends");
}

void
Inet::configureChain(const std::vector<CoreId> &chain)
{
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
        Node &n = nodes_.at(static_cast<size_t>(chain[i]));
        if (n.downstream != -1)
            fatal("inet: core ", chain[i], " already in a chain");
        n.downstream = chain[i + 1];
    }
}

void
Inet::clearCore(CoreId core)
{
    Node &n = nodes_.at(static_cast<size_t>(core));
    n.downstream = -1;
    n.queue.clear();
    n.linkBusy = false;
}

bool
Inet::hasDownstream(CoreId core) const
{
    return nodes_.at(static_cast<size_t>(core)).downstream != -1;
}

bool
Inet::canSend(CoreId core) const
{
    const Node &n = nodes_.at(static_cast<size_t>(core));
    if (n.downstream == -1 || n.linkBusy)
        return false;
    const Node &down = nodes_[static_cast<size_t>(n.downstream)];
    return static_cast<int>(down.queue.size()) < capacity_;
}

void
Inet::send(CoreId core, const InetMsg &msg)
{
    Node &n = nodes_.at(static_cast<size_t>(core));
    if (!canSend(core))
        panic("inet: send from core ", core, " without space");
    n.linkBusy = true;
    n.inFlight = msg;
    *statSends_ += 1;
    if (trace_ != nullptr) {
        TraceEvent ev;
        ev.cycle = static_cast<std::uint32_t>(trace_->now());
        ev.tile = static_cast<std::uint16_t>(core);
        ev.kind = static_cast<std::uint8_t>(TraceKind::InetHop);
        ev.sub = static_cast<std::uint8_t>(msg.kind);
        ev.pc = msg.pc;
        ev.a = static_cast<std::uint32_t>(n.downstream);
        ev.b = 0;
        trace_->record(ev);
    }
}

bool
Inet::hasMsg(CoreId core) const
{
    return !nodes_.at(static_cast<size_t>(core)).queue.empty();
}

const InetMsg &
Inet::front(CoreId core) const
{
    const Node &n = nodes_.at(static_cast<size_t>(core));
    if (n.queue.empty())
        panic("inet: front() on empty queue of core ", core);
    return n.queue.front();
}

void
Inet::pop(CoreId core)
{
    Node &n = nodes_.at(static_cast<size_t>(core));
    if (n.queue.empty())
        panic("inet: pop() on empty queue of core ", core);
    n.queue.pop_front();
}

int
Inet::queueSize(CoreId core) const
{
    return static_cast<int>(nodes_.at(static_cast<size_t>(core))
                                .queue.size());
}

void
Inet::tick(Cycle)
{
    // Deliver in-flight messages: one register write per link per cycle.
    for (Node &n : nodes_) {
        if (!n.linkBusy)
            continue;
        Node &down = nodes_[static_cast<size_t>(n.downstream)];
        if (static_cast<int>(down.queue.size()) >= capacity_)
            panic("inet: downstream queue overflow");
        down.queue.push_back(n.inFlight);
        n.linkBusy = false;
    }
}

bool
Inet::idle() const
{
    for (const Node &n : nodes_) {
        if (n.linkBusy || !n.queue.empty())
            return false;
    }
    return true;
}

} // namespace rockcress
