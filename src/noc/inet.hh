/**
 * @file
 * The instruction forwarding network (inet), Section 3.2: a static
 * network of direct 1-cycle connections between neighboring tiles,
 * with a small input queue per tile (Table 1a: 2 entries). Within a
 * vector group, messages flow along a chain: scalar -> expander ->
 * vector core -> ... Backpressure arises when a downstream queue is
 * full; the inet as a whole forms the bounded queue that the
 * compiler's implicit synchronization scheme relies on (Section 4.2).
 */

#ifndef ROCKCRESS_NOC_INET_HH
#define ROCKCRESS_NOC_INET_HH

#include <deque>
#include <vector>

#include "isa/instr.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "trace/trace.hh"

namespace rockcress
{

/** A message on the inet. */
struct InetMsg
{
    enum class Kind : std::uint8_t
    {
        Instr,   ///< A forwarded instruction.
        Vissue,  ///< Microthread launch: pc = starting instruction index.
        Devec,   ///< Disband: pc = resume instruction index.
    };

    Kind kind = Kind::Instr;
    Instruction inst;
    int pc = 0;
};

/**
 * All inet links and queues in the fabric. The machine configures a
 * chain per vector group at formation time and clears it at disband.
 */
class Inet : public Ticked
{
  public:
    /**
     * @param num_cores Tiles in the fabric.
     * @param queue_capacity Per-tile input queue entries (q_inet).
     * @param stats Stat scope ("inet.").
     */
    Inet(int num_cores, int queue_capacity, const StatScope &stats);

    /**
     * Wire the forwarding chain for one group.
     * chain[0] is the scalar core, chain[1] the expander, then the
     * remaining vector cores in snake order.
     */
    void configureChain(const std::vector<CoreId> &chain);

    /** Tear down a core's link and queue (on devec). */
    void clearCore(CoreId core);

    /** Does this core have a downstream neighbor to forward to? */
    bool hasDownstream(CoreId core) const;

    /**
     * Can this core send a message downstream this cycle?
     * False when the link is occupied or the downstream queue
     * (counting the in-flight message) is full.
     */
    bool canSend(CoreId core) const;

    /** Send one message downstream; arrives next cycle. */
    void send(CoreId core, const InetMsg &msg);

    /** @name Input queue access for the receiving core. */
    ///@{
    bool hasMsg(CoreId core) const;
    const InetMsg &front(CoreId core) const;
    void pop(CoreId core);
    int queueSize(CoreId core) const;
    ///@}

    int queueCapacity() const { return capacity_; }

    void tick(Cycle now) override;

    /** True when all queues and links are empty. */
    bool idle() const;

    /**
     * Attach (null: detach) the trace sink. While attached, every
     * send records an InetHop event (sender, message kind, receiver).
     */
    void setTrace(TraceSink *sink) { trace_ = sink; }

  private:
    struct Node
    {
        CoreId downstream = -1;
        std::deque<InetMsg> queue;
        bool linkBusy = false;
        InetMsg inFlight;
    };

    std::vector<Node> nodes_;
    int capacity_;
    TraceSink *trace_ = nullptr;
    std::uint64_t *statSends_;
};

} // namespace rockcress

#endif // ROCKCRESS_NOC_INET_HH
