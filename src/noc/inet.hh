/**
 * @file
 * The instruction forwarding network (inet), Section 3.2: a static
 * network of direct 1-cycle connections between neighboring tiles,
 * with a small input queue per tile (Table 1a: 2 entries). Within a
 * vector group, messages flow along a chain: scalar -> expander ->
 * vector core -> ... Backpressure arises when a downstream queue is
 * full; the inet as a whole forms the bounded queue that the
 * compiler's implicit synchronization scheme relies on (Section 4.2).
 */

#ifndef ROCKCRESS_NOC_INET_HH
#define ROCKCRESS_NOC_INET_HH

#include <deque>
#include <functional>
#include <vector>

#include "isa/instr.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "trace/trace.hh"

namespace rockcress
{

/** A message on the inet. */
struct InetMsg
{
    enum class Kind : std::uint8_t
    {
        Instr,   ///< A forwarded instruction.
        Vissue,  ///< Microthread launch: pc = starting instruction index.
        Devec,   ///< Disband: pc = resume instruction index.
    };

    Kind kind = Kind::Instr;
    Instruction inst;
    int pc = 0;

    /** Checkpoint field visitor (sim/checkpoint.hh). */
    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        ar(kind, inst, pc);
    }
};

/**
 * All inet links and queues in the fabric. The machine configures a
 * chain per vector group at formation time and clears it at disband.
 */
class Inet : public Ticked
{
  public:
    /**
     * @param num_cores Tiles in the fabric.
     * @param queue_capacity Per-tile input queue entries (q_inet).
     * @param stats Stat scope ("inet.").
     */
    Inet(int num_cores, int queue_capacity, const StatScope &stats);

    /**
     * Wire the forwarding chain for one group.
     * chain[0] is the scalar core, chain[1] the expander, then the
     * remaining vector cores in snake order.
     */
    void configureChain(const std::vector<CoreId> &chain);

    /** Tear down a core's link and queue (on devec). */
    void clearCore(CoreId core);

    /** Does this core have a downstream neighbor to forward to? */
    bool hasDownstream(CoreId core) const;

    /**
     * Can this core send a message downstream this cycle?
     * False when the link is occupied or the downstream queue
     * (counting the in-flight message) is full.
     */
    bool canSend(CoreId core) const;

    /** Send one message downstream; arrives next cycle. */
    void send(CoreId core, const InetMsg &msg);

    /**
     * Record that `core` is blocked on canSend() and must be woken
     * when its link frees or its downstream queue gains space. Called
     * by the core every tick it observes canSend() false and has a
     * message to send; without the flag, queue-space and link-free
     * events wake nobody (a core that never asked cannot be waiting
     * on them — every canSend() consultation in the core flags
     * itself here before blocking).
     */
    void noteSendBlocked(CoreId core)
    {
        nodes_.at(static_cast<size_t>(core)).sendWaiter = true;
    }

    /** @name Input queue access for the receiving core. */
    ///@{
    bool hasMsg(CoreId core) const;
    const InetMsg &front(CoreId core) const;
    void pop(CoreId core);
    int queueSize(CoreId core) const;
    ///@}

    int queueCapacity() const { return capacity_; }

    void tick(Cycle now) override;
    Cycle nextTickAt(Cycle now) override;

    /**
     * Wire the fast-tick wakeup callbacks: `self` re-arms the inet
     * itself (a send needs a delivery tick), `core` re-arms a tile
     * whose inet-visible state changed (message arrival, queue space,
     * link freed). Unset callbacks (standalone unit tests) are
     * ignored.
     */
    void
    setWake(std::function<void()> self, std::function<void(CoreId)> core)
    {
        wakeSelf_ = std::move(self);
        wakeCore_ = std::move(core);
    }

    /** True when all queues and links are empty. */
    bool idle() const;

    /**
     * Attach (null: detach) the trace sink. While attached, every
     * send records an InetHop event (sender, message kind, receiver).
     */
    void setTrace(TraceSink *sink) { trace_ = sink; }

    /**
     * Checkpoint field visitor (sim/checkpoint.hh). The chain wiring
     * is restored through the node records directly — replaying
     * configureChain would reject links that are already set — and
     * the busy-link bookkeeping is re-derived from the node flags.
     */
    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        ar(nodes_);
        if constexpr (Ar::isReader) {
            busyLinks_ = 0;
            for (auto &w : busyBits_)
                w = 0;
            for (std::size_t i = 0; i < nodes_.size(); ++i) {
                if (nodes_[i].linkBusy) {
                    ++busyLinks_;
                    busyBits_[i / 64] |= std::uint64_t{1} << (i % 64);
                }
            }
        }
    }

  private:
    struct Node
    {
        CoreId downstream = -1;
        CoreId upstream = -1;   ///< Node whose downstream is this one.
        std::deque<InetMsg> queue;
        bool linkBusy = false;
        bool sendWaiter = false;   ///< Blocked on canSend(); wake me.
        InetMsg inFlight;

        template <class Ar>
        void
        serializeFields(Ar &ar)
        {
            ar(downstream, upstream, queue, linkBusy, sendWaiter,
               inFlight);
        }
    };

    std::vector<Node> nodes_;
    int capacity_;
    int busyLinks_ = 0;   ///< Links with an in-flight message.
    /**
     * Bit per node whose link is busy; tick() visits set bits in
     * ascending order — the same order the full node sweep delivers
     * in — instead of scanning every node every cycle.
     */
    std::vector<std::uint64_t> busyBits_;
    TraceSink *trace_ = nullptr;
    std::function<void()> wakeSelf_;
    std::function<void(CoreId)> wakeCore_;
    std::uint64_t *statSends_;
};

} // namespace rockcress

#endif // ROCKCRESS_NOC_INET_HH
