#include "noc/mesh.hh"

#include <algorithm>
#include <bit>

#include "sim/checkpoint.hh"
#include "sim/log.hh"

namespace rockcress
{

Mesh::Mesh(int cols, int rows, int width_words, const StatScope &stats)
    : cols_(cols), rows_(rows), width_(width_words)
{
    if (cols <= 0 || rows <= 0 || width_words <= 0)
        fatal("mesh: invalid geometry ", cols, "x", rows, " width ",
              width_words);
    routers_.resize(static_cast<size_t>(cols * rows));
    activeBits_.resize(
        (static_cast<size_t>(cols * rows) * NumDirs + 63) / 64, 0);
    wheel_.resize(64);
    wheelMask_ = wheel_.size() - 1;
    if ((width_ & (width_ - 1)) == 0)
        widthShift_ = std::countr_zero(static_cast<unsigned>(width_));
    auto nodes = static_cast<size_t>(cols * rows);
    dirTable_.resize(nodes * nodes);
    for (size_t r = 0; r < nodes; ++r)
        for (size_t d = 0; d < nodes; ++d)
            dirTable_[r * nodes + d] = static_cast<std::uint8_t>(
                computeDir(static_cast<int>(r), static_cast<int>(d)));
    hopTable_.assign(nodes * NumDirs, -1);
    for (size_t r = 0; r < nodes; ++r) {
        int rx = static_cast<int>(r) % cols_;
        int ry = static_cast<int>(r) / cols_;
        if (ry > 0)
            hopTable_[r * NumDirs + North] = nodeId(rx, ry - 1);
        if (ry < rows_ - 1)
            hopTable_[r * NumDirs + South] = nodeId(rx, ry + 1);
        if (rx < cols_ - 1)
            hopTable_[r * NumDirs + East] = nodeId(rx + 1, ry);
        if (rx > 0)
            hopTable_[r * NumDirs + West] = nodeId(rx - 1, ry);
    }
    statPackets_ = stats.counter("packets");
    statWords_ = stats.counter("words");
    statWordHops_ = stats.counter("word_hops");
}

void
Mesh::setSink(int node, Sink sink)
{
    routers_.at(static_cast<size_t>(node)).sink = std::move(sink);
}

int
Mesh::computeDir(int router, int dst) const
{
    if (router == dst)
        return Local;
    int rx = router % cols_, ry = router / cols_;
    int dx = dst % cols_, dy = dst / cols_;
    // XY dimension-order routing: X first, then Y.
    if (dx > rx)
        return East;
    if (dx < rx)
        return West;
    return dy > ry ? South : North;
}

int
Mesh::routeDir(int router, int dst) const
{
    return dirTable_[static_cast<size_t>(router) * routers_.size() +
                     static_cast<size_t>(dst)];
}

int
Mesh::allocPacket(Packet &&pkt)
{
    if (freeList_.empty()) {
        pool_.push_back(std::move(pkt));
        return static_cast<int>(pool_.size()) - 1;
    }
    int h = freeList_.back();
    freeList_.pop_back();
    pool_[static_cast<size_t>(h)] = std::move(pkt);
    return h;
}

void
Mesh::acceptAt(int router, QEnt ent)
{
    int dir = routeDir(router, ent.dst);
    OutPort &port = routers_[static_cast<size_t>(router)].ports[dir];
    if (port.empty()) {
        auto pid = static_cast<size_t>(router * NumDirs + dir);
        activeBits_[pid / 64] |= std::uint64_t{1} << (pid % 64);
    }
    port.push(ent);
}

void
Mesh::send(Packet pkt)
{
    if (pkt.srcNode < 0 || pkt.srcNode >= cols_ * rows_ ||
        pkt.dstNode < 0 || pkt.dstNode >= cols_ * rows_) {
        panic("mesh: packet with bad endpoints ", pkt.srcNode, " -> ",
              pkt.dstNode);
    }
    // Re-arm only on the idle->busy edge: while packets are in
    // flight, nextTickAt() keeps the mesh scheduled every cycle.
    if (++inFlightPackets_ == 1 && wakeSelf_)
        wakeSelf_();
    *statPackets_ += 1;
    *statWords_ += static_cast<std::uint64_t>(pkt.words);
    QEnt ent;
    ent.dst = pkt.dstNode;
    ent.words = pkt.words;
    int src = pkt.srcNode;
    ent.handle = allocPacket(std::move(pkt));
    acceptAt(src, ent);
}

Cycle
Mesh::nextTickAt(Cycle now)
{
    // While packets are in flight the mesh runs every cycle, exactly
    // like the naive kernel (port-occupancy horizons make finer
    // prediction fragile for no gain — memory-busy phases tick the
    // mesh anyway). An empty mesh's tick is a no-op; send() re-arms.
    return inFlightPackets_ > 0 ? now + 1 : kNeverTick;
}

void
Mesh::growWheel(std::size_t need)
{
    std::size_t ns = wheel_.size();
    while (ns < need)
        ns *= 2;
    wheelMask_ = ns - 1;
    std::vector<std::vector<Transit>> nw(ns);
    // Each old bucket holds transits of a single ready value (spans
    // stayed below the old size), so moving buckets whole preserves
    // the per-cycle insertion order the completion scan relies on.
    for (auto &bucket : wheel_) {
        if (bucket.empty())
            continue;
        auto slot = static_cast<std::size_t>(bucket.front().ready) % ns;
        if (nw[slot].empty()) {
            nw[slot] = std::move(bucket);
        } else {
            for (Transit &t : bucket)
                nw[slot].push_back(std::move(t));
        }
    }
    wheel_ = std::move(nw);
}

void
Mesh::tick(Cycle now)
{
    // Complete transits that arrive this cycle.
    std::vector<Transit> &arrived =
        wheel_[static_cast<std::size_t>(now) & wheelMask_];
    for (Transit &t : arrived) {
        if (t.router < 0) {
            Router &r = routers_[static_cast<size_t>(t.localOf)];
            if (!r.sink)
                panic("mesh: packet for node ", t.localOf,
                      " which has no sink");
            --inFlightPackets_;
            // Move out and free before the sink runs: a sink is then
            // free to send() (reallocating or reusing pool slots)
            // without invalidating the packet it was handed.
            Packet pkt =
                std::move(pool_[static_cast<size_t>(t.ent.handle)]);
            freePacket(t.ent.handle);
            r.sink(pkt);
        } else {
            acceptAt(t.router, t.ent);
        }
    }
    arrived.clear();

    // Launch packets from output ports. Only ports with queued
    // packets are visited; ascending bit order makes this the same
    // scan the full router x direction sweep performs. Completions
    // above may have activated ports; launches only deactivate (and
    // only the bit being visited), so iterating a copied word while
    // clearing drained bits in place is safe.
    for (size_t w = 0; w < activeBits_.size(); ++w) {
        std::uint64_t bits = activeBits_[w];
        while (bits != 0) {
            auto bit = static_cast<unsigned>(std::countr_zero(bits));
            bits &= bits - 1;
            size_t pid = w * 64 + bit;
            auto rid = pid / NumDirs;
            int d = static_cast<int>(pid % NumDirs);
            OutPort &port = routers_[rid].ports[d];
            if (port.busyUntil > now)
                continue;
            QEnt ent = port.pop();
            if (port.empty())
                activeBits_[w] &= ~(std::uint64_t{1} << bit);
            Cycle span =
                widthShift_ >= 0
                    ? std::max<Cycle>(
                          1, static_cast<Cycle>(ent.words + width_ - 1)
                                 >> widthShift_)
                    : std::max<Cycle>(1, static_cast<Cycle>(ceilDiv(
                                             ent.words, width_)));
            port.busyUntil = now + span;
            *statWordHops_ += static_cast<std::uint64_t>(ent.words);
            if (trace_ != nullptr) {
                TraceEvent ev;
                ev.cycle = static_cast<std::uint32_t>(now);
                ev.tile = static_cast<std::uint16_t>(rid);
                ev.kind = static_cast<std::uint8_t>(TraceKind::NocLink);
                ev.sub = static_cast<std::uint8_t>(d);
                ev.pc = -1;
                ev.a = static_cast<std::uint32_t>(span);
                ev.b = static_cast<std::uint64_t>(ent.words);
                trace_->record(ev);
            }
            Transit t;
            t.ready = now + span;
            if (d == Local) {
                t.router = -1;
                t.localOf = static_cast<int>(rid);
            } else {
                t.router = hopTable_[pid];
                if (t.router < 0)
                    panic("mesh: route off grid at router ", rid);
                t.localOf = -1;
            }
            t.ent = ent;
            if (span > static_cast<Cycle>(wheel_.size()))
                growWheel(static_cast<std::size_t>(span));
            wheel_[static_cast<std::size_t>(t.ready) & wheelMask_]
                .push_back(std::move(t));
        }
    }
}

void
Mesh::save(SnapshotWriter &w)
{
    // Port queues: live entries only (head onward), packets inline.
    for (auto &router : routers_) {
        for (auto &port : router.ports) {
            w(port.busyUntil);
            auto live = static_cast<std::uint64_t>(port.queue.size() -
                                                   port.head);
            w(live);
            for (std::size_t i = port.head; i < port.queue.size(); ++i) {
                QEnt &e = port.queue[i];
                w(e.dst, e.words, pool_[static_cast<size_t>(e.handle)]);
            }
        }
    }
    // The wheel: size (bucket index = ready % size must be preserved)
    // then every transit in bucket-then-insertion order, packets
    // inline for final-delivery hops.
    auto wheelSize = static_cast<std::uint64_t>(wheel_.size());
    w(wheelSize);
    for (auto &bucket : wheel_) {
        auto n = static_cast<std::uint64_t>(bucket.size());
        w(n);
        for (Transit &t : bucket) {
            w(t.ready, t.router, t.localOf, t.ent.dst, t.ent.words,
              pool_[static_cast<size_t>(t.ent.handle)]);
        }
    }
}

void
Mesh::restore(SnapshotReader &r)
{
    pool_.clear();
    freeList_.clear();
    inFlightPackets_ = 0;
    for (auto &word : activeBits_)
        word = 0;

    for (std::size_t rid = 0; rid < routers_.size(); ++rid) {
        for (int d = 0; d < NumDirs; ++d) {
            OutPort &port = routers_[rid].ports[d];
            port.queue.clear();
            port.head = 0;
            r(port.busyUntil);
            std::uint64_t live = 0;
            r(live);
            for (std::uint64_t i = 0; i < live; ++i) {
                QEnt e;
                Packet pkt;
                r(e.dst, e.words, pkt);
                e.handle = allocPacket(std::move(pkt));
                port.push(e);
                ++inFlightPackets_;
            }
            if (!port.empty()) {
                std::size_t pid = rid * NumDirs +
                                  static_cast<std::size_t>(d);
                activeBits_[pid / 64] |= std::uint64_t{1} << (pid % 64);
            }
        }
    }

    std::uint64_t wheelSize = 0;
    r(wheelSize);
    if (wheelSize == 0 || (wheelSize & (wheelSize - 1)) != 0) {
        throw CheckpointError("checkpoint: corrupt mesh wheel size " +
                              std::to_string(wheelSize));
    }
    wheel_.assign(static_cast<std::size_t>(wheelSize), {});
    wheelMask_ = wheel_.size() - 1;
    for (std::uint64_t b = 0; b < wheelSize; ++b) {
        std::uint64_t n = 0;
        r(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            Transit t;
            Packet pkt;
            r(t.ready, t.router, t.localOf, t.ent.dst, t.ent.words,
              pkt);
            t.ent.handle = allocPacket(std::move(pkt));
            wheel_[static_cast<std::size_t>(t.ready) & wheelMask_]
                .push_back(std::move(t));
            ++inFlightPackets_;
        }
    }
}

} // namespace rockcress
