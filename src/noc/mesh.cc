#include "noc/mesh.hh"

#include <algorithm>

#include "sim/log.hh"

namespace rockcress
{

Mesh::Mesh(int cols, int rows, int width_words, const StatScope &stats)
    : cols_(cols), rows_(rows), width_(width_words)
{
    if (cols <= 0 || rows <= 0 || width_words <= 0)
        fatal("mesh: invalid geometry ", cols, "x", rows, " width ",
              width_words);
    routers_.resize(static_cast<size_t>(cols * rows));
    statPackets_ = stats.counter("packets");
    statWords_ = stats.counter("words");
    statWordHops_ = stats.counter("word_hops");
}

void
Mesh::setSink(int node, Sink sink)
{
    routers_.at(static_cast<size_t>(node)).sink = std::move(sink);
}

int
Mesh::routeDir(int router, int dst) const
{
    if (router == dst)
        return Local;
    int rx = router % cols_, ry = router / cols_;
    int dx = dst % cols_, dy = dst / cols_;
    // XY dimension-order routing: X first, then Y.
    if (dx > rx)
        return East;
    if (dx < rx)
        return West;
    return dy > ry ? South : North;
}

void
Mesh::acceptAt(int router, Packet &&pkt)
{
    int dir = routeDir(router, pkt.dstNode);
    routers_[static_cast<size_t>(router)]
        .ports[dir]
        .queue.push_back(std::move(pkt));
}

void
Mesh::send(Packet pkt)
{
    if (pkt.srcNode < 0 || pkt.srcNode >= cols_ * rows_ ||
        pkt.dstNode < 0 || pkt.dstNode >= cols_ * rows_) {
        panic("mesh: packet with bad endpoints ", pkt.srcNode, " -> ",
              pkt.dstNode);
    }
    ++inFlightPackets_;
    *statPackets_ += 1;
    *statWords_ += static_cast<std::uint64_t>(pkt.words);
    acceptAt(pkt.srcNode, std::move(pkt));
}

void
Mesh::tick(Cycle now)
{
    // Complete transits that arrive this cycle.
    size_t keep = 0;
    for (size_t i = 0; i < transits_.size(); ++i) {
        Transit &t = transits_[i];
        if (t.ready > now) {
            if (keep != i)
                transits_[keep] = std::move(transits_[i]);
            ++keep;
            continue;
        }
        if (t.router < 0) {
            Router &r = routers_[static_cast<size_t>(t.localOf)];
            if (!r.sink)
                panic("mesh: packet for node ", t.localOf,
                      " which has no sink");
            --inFlightPackets_;
            r.sink(t.pkt);
        } else {
            acceptAt(t.router, std::move(t.pkt));
        }
    }
    transits_.resize(keep);

    // Launch packets from output ports.
    for (size_t rid = 0; rid < routers_.size(); ++rid) {
        Router &r = routers_[rid];
        int rx = static_cast<int>(rid) % cols_;
        int ry = static_cast<int>(rid) / cols_;
        for (int d = 0; d < NumDirs; ++d) {
            OutPort &port = r.ports[d];
            if (port.queue.empty() || port.busyUntil > now)
                continue;
            Packet pkt = std::move(port.queue.front());
            port.queue.pop_front();
            Cycle span = std::max<Cycle>(
                1, static_cast<Cycle>(ceilDiv(pkt.words, width_)));
            port.busyUntil = now + span;
            *statWordHops_ += static_cast<std::uint64_t>(pkt.words);
            if (trace_ != nullptr) {
                TraceEvent ev;
                ev.cycle = static_cast<std::uint32_t>(now);
                ev.tile = static_cast<std::uint16_t>(rid);
                ev.kind = static_cast<std::uint8_t>(TraceKind::NocLink);
                ev.sub = static_cast<std::uint8_t>(d);
                ev.pc = -1;
                ev.a = static_cast<std::uint32_t>(span);
                ev.b = static_cast<std::uint64_t>(pkt.words);
                trace_->record(ev);
            }
            Transit t;
            t.ready = now + span;
            if (d == Local) {
                t.router = -1;
                t.localOf = static_cast<int>(rid);
            } else {
                int nx = rx, ny = ry;
                switch (d) {
                  case North: ny -= 1; break;
                  case South: ny += 1; break;
                  case East:  nx += 1; break;
                  case West:  nx -= 1; break;
                  default: break;
                }
                if (nx < 0 || nx >= cols_ || ny < 0 || ny >= rows_)
                    panic("mesh: route off grid at router ", rid);
                t.router = nodeId(nx, ny);
                t.localOf = -1;
            }
            t.pkt = std::move(pkt);
            transits_.push_back(std::move(t));
        }
    }
}

} // namespace rockcress
