/**
 * @file
 * The vectorization manifest: metadata the compiler records while it
 * strip-mines a kernel into the scalar/expander/vector split, so the
 * translation validator (analysis/equiv.hh) can later re-derive what
 * the emitters *intended* and prove the emitted instructions faithful
 * to it. Each DAE scalar stream (compiler/codegen.hh,
 * emitScalarStream) contributes one ManifestStream: the pc ranges of
 * its prologue / preheader / steady-state fill, the trip-count seat,
 * the vissue site and the body microthread it launches — plus a
 * verbatim copy of the instructions as the emitter produced them,
 * taken before any downstream mutation (the reference leg of the
 * equivalence proof).
 */

#ifndef ROCKCRESS_ISA_MANIFEST_HH
#define ROCKCRESS_ISA_MANIFEST_HH

#include <vector>

#include "isa/instr.hh"

namespace rockcress
{

/** One strip-mined DAE stream (scalar fill loop + vector body). */
struct ManifestStream
{
    int iters = 0;        ///< Compile-time trip count.
    int ahead = 0;        ///< Effective run-ahead depth (min'd).
    int frameWords = 0;   ///< Frame size the fills target.
    int numFrames = 0;    ///< Frames in the rotation region.
    RegIdx boundReg = 0;  ///< Register seated with the trip count.

    // Instruction-index ranges, all half-open [lo, hi).
    int prologueLo = -1, prologueHi = -1;   ///< Run-ahead fills.
    int preheaderLo = -1, preheaderHi = -1; ///< Induction/bound seats.
    int fillLo = -1, fillHi = -1;           ///< Steady-state fill.
    int loopLo = -1, loopHi = -1;           ///< Whole steady loop.
    int boundPc = -1;     ///< The li seating boundReg with iters.
    int vissuePc = -1;    ///< The vissue inside the steady loop.

    // Resolved at Assembler::finish(), once labels are patched.
    int bodyEntry = -1;   ///< Microthread entry (vissue target).
    int bodyLo = -1, bodyHi = -1;  ///< Body range, vend inclusive.

    // Reference copies of each region, captured at finish() before
    // any post-capture mutation of Program::code. These are the
    // trusted transcript of what the emitter produced.
    std::vector<Instruction> refPrologue;
    std::vector<Instruction> refPreheader;
    std::vector<Instruction> refFill;
    std::vector<Instruction> refBody;

    bool operator==(const ManifestStream &) const = default;
};

/** Everything the compiler asserts about its vectorization. */
struct VectorizationManifest
{
    std::vector<ManifestStream> streams;

    bool operator==(const VectorizationManifest &) const = default;
};

} // namespace rockcress

#endif // ROCKCRESS_ISA_MANIFEST_HH
