#include "isa/assembler.hh"

#include <algorithm>

#include "sim/log.hh"

namespace rockcress
{

namespace
{

constexpr std::int32_t immMin = -2048;
constexpr std::int32_t immMax = 2047;

Instruction
rrr(Opcode op, RegIdx rd, RegIdx rs1, RegIdx rs2)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    return i;
}

Instruction
rri(Opcode op, RegIdx rd, RegIdx rs1, std::int32_t imm)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = imm;
    return i;
}

} // namespace

Label
Assembler::newLabel()
{
    labelPcs_.push_back(-1);
    return Label{static_cast<int>(labelPcs_.size()) - 1};
}

void
Assembler::bind(Label l)
{
    if (l.id < 0 || l.id >= static_cast<int>(labelPcs_.size()))
        fatal("assembler '", name_, "': bind of invalid label");
    if (labelPcs_[static_cast<size_t>(l.id)] != -1)
        fatal("assembler '", name_, "': label bound twice");
    labelPcs_[static_cast<size_t>(l.id)] = pc();
}

Label
Assembler::here()
{
    Label l = newLabel();
    bind(l);
    return l;
}

void
Assembler::symbol(const std::string &name)
{
    auto [it, inserted] = symbols_.emplace(name, pc());
    if (!inserted)
        fatal("assembler '", name_, "': duplicate symbol '", name,
              "' at pc ", pc(), " (first defined at pc ", it->second,
              ")");
}

void
Assembler::emit(const Instruction &inst)
{
    if (finished_)
        fatal("assembler '", name_, "': emit after finish");
    code_.push_back(inst);
}

void
Assembler::useLabel(Label l, int at)
{
    if (l.id < 0 || l.id >= static_cast<int>(labelPcs_.size()))
        fatal("assembler '", name_, "': reference to invalid label");
    fixups_.emplace_back(at, l.id);
}

// --- Integer ALU ---------------------------------------------------------

void Assembler::add(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::ADD, rd, a, b)); }
void Assembler::sub(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::SUB, rd, a, b)); }
void Assembler::and_(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::AND, rd, a, b)); }
void Assembler::or_(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::OR, rd, a, b)); }
void Assembler::xor_(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::XOR, rd, a, b)); }
void Assembler::sll(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::SLL, rd, a, b)); }
void Assembler::srl(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::SRL, rd, a, b)); }
void Assembler::slt(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::SLT, rd, a, b)); }
void Assembler::sltu(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::SLTU, rd, a, b)); }
void Assembler::mul(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::MUL, rd, a, b)); }
void Assembler::div(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::DIV, rd, a, b)); }
void Assembler::rem(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::REM, rd, a, b)); }

void
Assembler::addi(RegIdx rd, RegIdx rs1, std::int32_t imm)
{
    if (imm < immMin || imm > immMax)
        fatal("assembler '", name_, "': addi immediate ", imm,
              " out of 12-bit range; use li into a temporary");
    emit(rri(Opcode::ADDI, rd, rs1, imm));
}

void Assembler::andi(RegIdx rd, RegIdx rs1, std::int32_t imm)
{ emit(rri(Opcode::ANDI, rd, rs1, imm)); }
void Assembler::slli(RegIdx rd, RegIdx rs1, std::int32_t sh)
{ emit(rri(Opcode::SLLI, rd, rs1, sh)); }
void Assembler::srli(RegIdx rd, RegIdx rs1, std::int32_t sh)
{ emit(rri(Opcode::SRLI, rd, rs1, sh)); }
void Assembler::srai(RegIdx rd, RegIdx rs1, std::int32_t sh)
{ emit(rri(Opcode::SRAI, rd, rs1, sh)); }
void Assembler::slti(RegIdx rd, RegIdx rs1, std::int32_t imm)
{ emit(rri(Opcode::SLTI, rd, rs1, imm)); }
void Assembler::lui(RegIdx rd, std::int32_t upper20)
{ emit(rri(Opcode::LUI, rd, regZero, upper20)); }

void
Assembler::li(RegIdx rd, std::int32_t value)
{
    if (value >= immMin && value <= immMax) {
        addi(rd, regZero, value);
        return;
    }
    // LUI + ADDI with sign-correction, as a real assembler expands it.
    std::int32_t upper = (value + 0x800) >> 12;
    std::int32_t lower = value - (upper << 12);
    lui(rd, upper);
    emit(rri(Opcode::ADDI, rd, rd, lower));
}

void
Assembler::la(RegIdx rd, Addr addr)
{
    li(rd, static_cast<std::int32_t>(addr));
}

void Assembler::mv(RegIdx rd, RegIdx rs) { addi(rd, rs, 0); }
void Assembler::nop() { emit(Instruction{}); }

// --- Control flow --------------------------------------------------------

void
Assembler::branchTo(Opcode op, RegIdx rs1, RegIdx rs2, Label target)
{
    Instruction i = rrr(op, regZero, rs1, rs2);
    useLabel(target, pc());
    emit(i);
}

void Assembler::beq(RegIdx a, RegIdx b, Label t)
{ branchTo(Opcode::BEQ, a, b, t); }
void Assembler::bne(RegIdx a, RegIdx b, Label t)
{ branchTo(Opcode::BNE, a, b, t); }
void Assembler::blt(RegIdx a, RegIdx b, Label t)
{ branchTo(Opcode::BLT, a, b, t); }
void Assembler::bge(RegIdx a, RegIdx b, Label t)
{ branchTo(Opcode::BGE, a, b, t); }
void Assembler::bltu(RegIdx a, RegIdx b, Label t)
{ branchTo(Opcode::BLTU, a, b, t); }
void Assembler::bgeu(RegIdx a, RegIdx b, Label t)
{ branchTo(Opcode::BGEU, a, b, t); }

void
Assembler::j(Label target)
{
    jal(regZero, target);
}

void
Assembler::jal(RegIdx rd, Label target)
{
    Instruction i;
    i.op = Opcode::JAL;
    i.rd = rd;
    useLabel(target, pc());
    emit(i);
}

void
Assembler::jalr(RegIdx rd, RegIdx rs1, std::int32_t imm)
{
    emit(rri(Opcode::JALR, rd, rs1, imm));
}

// --- Memory ---------------------------------------------------------------

void
Assembler::lw(RegIdx rd, RegIdx base, std::int32_t offset)
{
    if (offset < immMin || offset > immMax)
        fatal("assembler '", name_, "': lw offset out of range");
    emit(rri(Opcode::LW, rd, base, offset));
}

void
Assembler::sw(RegIdx src, RegIdx base, std::int32_t offset)
{
    Instruction i;
    i.op = Opcode::SW;
    i.rs1 = base;
    i.rs2 = src;
    i.imm = offset;
    emit(i);
}

void
Assembler::flw(RegIdx frd, RegIdx base, std::int32_t offset)
{
    emit(rri(Opcode::FLW, frd, base, offset));
}

void
Assembler::fsw(RegIdx fsrc, RegIdx base, std::int32_t offset)
{
    Instruction i;
    i.op = Opcode::FSW;
    i.rs1 = base;
    i.rs2 = fsrc;
    i.imm = offset;
    emit(i);
}

// --- Floating point -------------------------------------------------------

void Assembler::fadd(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::FADD, rd, a, b)); }
void Assembler::fsub(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::FSUB, rd, a, b)); }
void Assembler::fmul(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::FMUL, rd, a, b)); }
void Assembler::fdiv(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::FDIV, rd, a, b)); }
void Assembler::fsqrt(RegIdx rd, RegIdx a)
{ emit(rrr(Opcode::FSQRT, rd, a, regZero)); }
void Assembler::fmin(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::FMIN, rd, a, b)); }
void Assembler::fmax(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::FMAX, rd, a, b)); }
void Assembler::fabs_(RegIdx rd, RegIdx a)
{ emit(rrr(Opcode::FABS, rd, a, regZero)); }
void Assembler::feq(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::FEQ, rd, a, b)); }
void Assembler::flt(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::FLT, rd, a, b)); }
void Assembler::fle(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::FLE, rd, a, b)); }
void Assembler::fcvtWS(RegIdx rd, RegIdx a)
{ emit(rrr(Opcode::FCVT_WS, rd, a, regZero)); }
void Assembler::fcvtSW(RegIdx rd, RegIdx a)
{ emit(rrr(Opcode::FCVT_SW, rd, a, regZero)); }
void Assembler::fmvXW(RegIdx rd, RegIdx a)
{ emit(rrr(Opcode::FMV_XW, rd, a, regZero)); }
void Assembler::fmvWX(RegIdx rd, RegIdx a)
{ emit(rrr(Opcode::FMV_WX, rd, a, regZero)); }

void
Assembler::fmadd(RegIdx rd, RegIdx a, RegIdx b, RegIdx c)
{
    Instruction i = rrr(Opcode::FMADD, rd, a, b);
    i.rs3 = c;
    emit(i);
}

// --- System ---------------------------------------------------------------

void Assembler::halt() { emit(rrr(Opcode::HALT, 0, 0, 0)); }
void Assembler::barrier() { emit(rrr(Opcode::BARRIER, 0, 0, 0)); }

void
Assembler::csrw(Csr csr, RegIdx rs1)
{
    Instruction i;
    i.op = Opcode::CSRW;
    i.rs1 = rs1;
    i.sub = static_cast<std::uint8_t>(csr);
    emit(i);
}

void
Assembler::csrr(RegIdx rd, Csr csr)
{
    Instruction i;
    i.op = Opcode::CSRR;
    i.rd = rd;
    i.sub = static_cast<std::uint8_t>(csr);
    emit(i);
}

// --- Software-defined vector extension ------------------------------------

void
Assembler::vissue(Label microthread)
{
    Instruction i;
    i.op = Opcode::VISSUE;
    useLabel(microthread, pc());
    emit(i);
}

void Assembler::vend() { emit(rrr(Opcode::VEND, 0, 0, 0)); }

void
Assembler::devec(Label resume)
{
    Instruction i;
    i.op = Opcode::DEVEC;
    useLabel(resume, pc());
    emit(i);
}

void
Assembler::vload(RegIdx addr_reg, RegIdx sp_off_reg, int core_off,
                 int width_words, VloadVariant variant)
{
    if (width_words <= 0 || width_words > 4096)
        fatal("assembler '", name_, "': vload width ", width_words);
    Instruction i;
    i.op = Opcode::VLOAD;
    i.rs1 = addr_reg;
    i.rs2 = sp_off_reg;
    i.imm = core_off;
    i.imm2 = width_words;
    i.sub = static_cast<std::uint8_t>(variant);
    emit(i);
}

void
Assembler::frameStart(RegIdx rd)
{
    Instruction i;
    i.op = Opcode::FRAME_START;
    i.rd = rd;
    emit(i);
}

void Assembler::remem() { emit(rrr(Opcode::REMEM, 0, 0, 0)); }

void
Assembler::predEq(RegIdx rs1, RegIdx rs2)
{
    Instruction i;
    i.op = Opcode::PRED_EQ;
    i.rs1 = rs1;
    i.rs2 = rs2;
    emit(i);
}

void
Assembler::predNeq(RegIdx rs1, RegIdx rs2)
{
    Instruction i;
    i.op = Opcode::PRED_NEQ;
    i.rs1 = rs1;
    i.rs2 = rs2;
    emit(i);
}

// --- SIMD -------------------------------------------------------------------

void Assembler::simdLw(RegIdx vrd, RegIdx base, std::int32_t offset)
{ emit(rri(Opcode::SIMD_LW, vrd, base, offset)); }

void
Assembler::simdSw(RegIdx vsrc, RegIdx base, std::int32_t offset)
{
    Instruction i;
    i.op = Opcode::SIMD_SW;
    i.rs1 = base;
    i.rs2 = vsrc;
    i.imm = offset;
    emit(i);
}

void Assembler::simdAdd(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::SIMD_ADD, rd, a, b)); }
void Assembler::simdFadd(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::SIMD_FADD, rd, a, b)); }
void Assembler::simdFsub(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::SIMD_FSUB, rd, a, b)); }
void Assembler::simdFmul(RegIdx rd, RegIdx a, RegIdx b)
{ emit(rrr(Opcode::SIMD_FMUL, rd, a, b)); }

void
Assembler::simdFma(RegIdx rd, RegIdx a, RegIdx b, RegIdx c)
{
    Instruction i = rrr(Opcode::SIMD_FMA, rd, a, b);
    i.rs3 = c;
    emit(i);
}

void Assembler::simdBcast(RegIdx vrd, RegIdx frs1)
{ emit(rrr(Opcode::SIMD_BCAST, vrd, frs1, regZero)); }
void Assembler::simdRedsum(RegIdx frd, RegIdx vrs1)
{ emit(rrr(Opcode::SIMD_REDSUM, frd, vrs1, regZero)); }

// --- Finish -----------------------------------------------------------------

Program
Assembler::finish()
{
    for (const auto &[at, label_id] : fixups_) {
        int target = labelPcs_[static_cast<size_t>(label_id)];
        if (target < 0)
            fatal("assembler '", name_, "': unresolved link patch: label ",
                  label_id, " referenced by '",
                  disassemble(code_[static_cast<size_t>(at)]),
                  "' at pc ", at, " was never bound");
        code_[static_cast<size_t>(at)].imm = target;
    }
    finished_ = true;
    Program p;
    p.name = name_;
    p.code = std::move(code_);
    p.symbols = std::move(symbols_);
    resolveManifest(p);
    p.manifest = std::move(manifest_);
    return p;
}

void
Assembler::resolveManifest(const Program &p)
{
    auto slice = [&](int lo, int hi) {
        std::vector<Instruction> out;
        if (lo >= 0 && hi >= lo && hi <= p.size()) {
            out.assign(p.code.begin() + lo, p.code.begin() + hi);
        }
        return out;
    };
    for (ManifestStream &ms : manifest_.streams) {
        if (ms.vissuePc >= 0 && ms.vissuePc < p.size() &&
            p.code[static_cast<size_t>(ms.vissuePc)].op ==
                Opcode::VISSUE) {
            ms.bodyEntry = p.code[static_cast<size_t>(ms.vissuePc)].imm;
        }
        if (ms.bodyEntry >= 0 && ms.bodyEntry < p.size()) {
            ms.bodyLo = ms.bodyEntry;
            int end = ms.bodyEntry;
            while (end < p.size() &&
                   p.code[static_cast<size_t>(end)].op != Opcode::VEND) {
                ++end;
            }
            ms.bodyHi = std::min(end + 1, p.size());
        }
        ms.refPrologue = slice(ms.prologueLo, ms.prologueHi);
        ms.refPreheader = slice(ms.preheaderLo, ms.preheaderHi);
        ms.refFill = slice(ms.fillLo, ms.fillHi);
        ms.refBody = slice(ms.bodyLo, ms.bodyHi);
    }
}

} // namespace rockcress
