/**
 * @file
 * An in-process assembler DSL. Together with src/compiler it plays
 * the role of the paper's toolchain (GCC to RISC-V assembly plus the
 * custom assembly-manipulation pass of Section 4.1): benchmark code
 * is written against this builder, which performs label resolution
 * and honest pseudo-instruction expansion so dynamic instruction
 * counts match what a real compiler would emit.
 */

#ifndef ROCKCRESS_ISA_ASSEMBLER_HH
#define ROCKCRESS_ISA_ASSEMBLER_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace rockcress
{

/** An opaque forward-referenceable code label. */
struct Label
{
    int id = -1;
};

/**
 * Streaming assembler: emit instructions, bind labels, finish().
 *
 * Immediate fields follow RISC-V limits: 12-bit signed for ADDI-class
 * and memory offsets. li()/la() expand to LUI+ADDI pairs when needed
 * so instruction counts stay honest.
 */
class Assembler
{
  public:
    explicit Assembler(std::string name) : name_(std::move(name)) {}

    /** @name Labels and symbols. */
    ///@{
    Label newLabel();
    void bind(Label l);
    /** Create and immediately bind. */
    Label here();
    /** Export the current position as a named program symbol. */
    void symbol(const std::string &name);
    /** Current instruction index. */
    int pc() const { return static_cast<int>(code_.size()); }
    ///@}

    /** Emit a raw instruction. */
    void emit(const Instruction &inst);

    /** @name Integer ALU. */
    ///@{
    void add(RegIdx rd, RegIdx rs1, RegIdx rs2);
    void sub(RegIdx rd, RegIdx rs1, RegIdx rs2);
    void and_(RegIdx rd, RegIdx rs1, RegIdx rs2);
    void or_(RegIdx rd, RegIdx rs1, RegIdx rs2);
    void xor_(RegIdx rd, RegIdx rs1, RegIdx rs2);
    void sll(RegIdx rd, RegIdx rs1, RegIdx rs2);
    void srl(RegIdx rd, RegIdx rs1, RegIdx rs2);
    void slt(RegIdx rd, RegIdx rs1, RegIdx rs2);
    void sltu(RegIdx rd, RegIdx rs1, RegIdx rs2);
    void mul(RegIdx rd, RegIdx rs1, RegIdx rs2);
    void div(RegIdx rd, RegIdx rs1, RegIdx rs2);
    void rem(RegIdx rd, RegIdx rs1, RegIdx rs2);
    void addi(RegIdx rd, RegIdx rs1, std::int32_t imm);
    void andi(RegIdx rd, RegIdx rs1, std::int32_t imm);
    void slli(RegIdx rd, RegIdx rs1, std::int32_t sh);
    void srli(RegIdx rd, RegIdx rs1, std::int32_t sh);
    void srai(RegIdx rd, RegIdx rs1, std::int32_t sh);
    void slti(RegIdx rd, RegIdx rs1, std::int32_t imm);
    void lui(RegIdx rd, std::int32_t upper20);
    ///@}

    /** @name Pseudo-instructions (expand honestly). */
    ///@{
    void li(RegIdx rd, std::int32_t value);       ///< 1 or 2 instrs.
    void la(RegIdx rd, Addr addr);                ///< Address form of li.
    void mv(RegIdx rd, RegIdx rs);                ///< addi rd, rs, 0.
    void nop();
    ///@}

    /** @name Control flow. */
    ///@{
    void beq(RegIdx rs1, RegIdx rs2, Label target);
    void bne(RegIdx rs1, RegIdx rs2, Label target);
    void blt(RegIdx rs1, RegIdx rs2, Label target);
    void bge(RegIdx rs1, RegIdx rs2, Label target);
    void bltu(RegIdx rs1, RegIdx rs2, Label target);
    void bgeu(RegIdx rs1, RegIdx rs2, Label target);
    void j(Label target);                          ///< jal x0, target.
    void jal(RegIdx rd, Label target);
    void jalr(RegIdx rd, RegIdx rs1, std::int32_t imm);
    ///@}

    /** @name Memory. */
    ///@{
    void lw(RegIdx rd, RegIdx base, std::int32_t offset);
    void sw(RegIdx src, RegIdx base, std::int32_t offset);
    void flw(RegIdx frd, RegIdx base, std::int32_t offset);
    void fsw(RegIdx fsrc, RegIdx base, std::int32_t offset);
    ///@}

    /** @name Floating point. */
    ///@{
    void fadd(RegIdx frd, RegIdx frs1, RegIdx frs2);
    void fsub(RegIdx frd, RegIdx frs1, RegIdx frs2);
    void fmul(RegIdx frd, RegIdx frs1, RegIdx frs2);
    void fdiv(RegIdx frd, RegIdx frs1, RegIdx frs2);
    void fsqrt(RegIdx frd, RegIdx frs1);
    void fmadd(RegIdx frd, RegIdx frs1, RegIdx frs2, RegIdx frs3);
    void fmin(RegIdx frd, RegIdx frs1, RegIdx frs2);
    void fmax(RegIdx frd, RegIdx frs1, RegIdx frs2);
    void fabs_(RegIdx frd, RegIdx frs1);
    void feq(RegIdx rd, RegIdx frs1, RegIdx frs2);
    void flt(RegIdx rd, RegIdx frs1, RegIdx frs2);
    void fle(RegIdx rd, RegIdx frs1, RegIdx frs2);
    void fcvtWS(RegIdx rd, RegIdx frs1);   ///< float -> int.
    void fcvtSW(RegIdx frd, RegIdx rs1);   ///< int -> float.
    void fmvXW(RegIdx rd, RegIdx frs1);    ///< move fp bits to int reg.
    void fmvWX(RegIdx frd, RegIdx rs1);    ///< move int bits to fp reg.
    ///@}

    /** @name System. */
    ///@{
    void halt();
    void barrier();
    void csrw(Csr csr, RegIdx rs1);
    void csrr(RegIdx rd, Csr csr);
    ///@}

    /** @name Software-defined vector extension. */
    ///@{
    void vissue(Label microthread);
    void vend();
    void devec(Label resume);
    /**
     * Wide vector load (Section 2.3.2).
     * @param addr_reg   Register holding the global byte address.
     * @param sp_off_reg Register holding the destination scratchpad
     *                   byte offset (frame base + intra-frame offset).
     * @param core_off   Offset of the first responding core in the group.
     * @param width_words Words delivered per vector core.
     * @param variant    Response routing variant.
     */
    void vload(RegIdx addr_reg, RegIdx sp_off_reg, int core_off,
               int width_words, VloadVariant variant);
    void frameStart(RegIdx rd);
    void remem();
    void predEq(RegIdx rs1, RegIdx rs2);
    void predNeq(RegIdx rs1, RegIdx rs2);
    ///@}

    /** @name Per-core SIMD (PCV). */
    ///@{
    void simdLw(RegIdx vrd, RegIdx base, std::int32_t offset);
    void simdSw(RegIdx vsrc, RegIdx base, std::int32_t offset);
    void simdAdd(RegIdx vrd, RegIdx vrs1, RegIdx vrs2);
    void simdFadd(RegIdx vrd, RegIdx vrs1, RegIdx vrs2);
    void simdFsub(RegIdx vrd, RegIdx vrs1, RegIdx vrs2);
    void simdFmul(RegIdx vrd, RegIdx vrs1, RegIdx vrs2);
    void simdFma(RegIdx vrd, RegIdx vrs1, RegIdx vrs2, RegIdx vrs3);
    void simdBcast(RegIdx vrd, RegIdx frs1);
    void simdRedsum(RegIdx frd, RegIdx vrs1);
    ///@}

    /**
     * Vectorization metadata under construction. The compiler's
     * stream emitters append a ManifestStream per DAE scalar stream;
     * finish() resolves each stream's vissue target into a body
     * range, captures the reference instruction copies, and moves
     * the manifest into the Program.
     */
    VectorizationManifest &manifest() { return manifest_; }

    /**
     * Resolve all label references and produce the program.
     * Fatal if any referenced label is unbound.
     */
    Program finish();

  private:
    void branchTo(Opcode op, RegIdx rs1, RegIdx rs2, Label target);
    void useLabel(Label l, int at);
    void resolveManifest(const Program &p);

    std::string name_;
    std::vector<Instruction> code_;
    std::vector<int> labelPcs_;                 ///< -1 while unbound.
    std::vector<std::pair<int, int>> fixups_;   ///< (instr idx, label id).
    std::map<std::string, int> symbols_;
    VectorizationManifest manifest_;
    bool finished_ = false;
};

} // namespace rockcress

#endif // ROCKCRESS_ISA_ASSEMBLER_HH
