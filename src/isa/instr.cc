#include "isa/instr.hh"

#include <array>
#include <sstream>

#include "sim/log.hh"

namespace rockcress
{

namespace
{

struct OpInfo
{
    const char *name;
    int latency;
};

const OpInfo &
info(Opcode op)
{
    // Latencies follow Table 1a: ALU 1, MUL 2, DIV 20, FP ALU 3,
    // FP MUL 3, SIMD ALU 3. FDIV/FSQRT use the divide latency.
    static const std::array<OpInfo,
                            static_cast<size_t>(Opcode::NUM_OPCODES)>
        table = {{
            {"nop", 1},
            {"add", 1}, {"sub", 1}, {"and", 1}, {"or", 1}, {"xor", 1},
            {"sll", 1}, {"srl", 1}, {"sra", 1}, {"slt", 1}, {"sltu", 1},
            {"mul", 2}, {"mulh", 2}, {"div", 20}, {"rem", 20},
            {"addi", 1}, {"andi", 1}, {"ori", 1}, {"xori", 1},
            {"slli", 1}, {"srli", 1}, {"srai", 1}, {"slti", 1},
            {"lui", 1},
            {"beq", 1}, {"bne", 1}, {"blt", 1}, {"bge", 1},
            {"bltu", 1}, {"bgeu", 1}, {"jal", 1}, {"jalr", 1},
            {"lw", 1}, {"sw", 1}, {"flw", 1}, {"fsw", 1},
            {"fadd", 3}, {"fsub", 3}, {"fmul", 3}, {"fdiv", 20},
            {"fsqrt", 20}, {"fmin", 3}, {"fmax", 3}, {"fmadd", 3},
            {"feq", 3}, {"flt", 3}, {"fle", 3},
            {"fcvt.w.s", 3}, {"fcvt.s.w", 3},
            {"fmv.x.w", 1}, {"fmv.w.x", 1}, {"fsgnj", 1}, {"fabs", 1},
            {"halt", 1}, {"barrier", 1}, {"csrw", 1}, {"csrr", 1},
            {"vissue", 1}, {"vend", 1}, {"devec", 1}, {"vload", 1},
            {"frame_start", 1}, {"remem", 1},
            {"pred_eq", 1}, {"pred_neq", 1},
            {"simd.lw", 1}, {"simd.sw", 1},
            {"simd.add", 3}, {"simd.sub", 3}, {"simd.mul", 3},
            {"simd.fadd", 3}, {"simd.fsub", 3}, {"simd.fmul", 3},
            {"simd.fma", 3}, {"simd.bcast", 1}, {"simd.redsum", 3},
        }};
    return table[static_cast<size_t>(op)];
}

} // namespace

bool
isCondBranch(Opcode op)
{
    switch (op) {
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
        return true;
      default:
        return false;
    }
}

bool
isBranch(Opcode op)
{
    return isCondBranch(op) || op == Opcode::JAL || op == Opcode::JALR;
}

bool
isLoad(Opcode op)
{
    return op == Opcode::LW || op == Opcode::FLW || op == Opcode::SIMD_LW;
}

bool
isStore(Opcode op)
{
    return op == Opcode::SW || op == Opcode::FSW || op == Opcode::SIMD_SW;
}

bool
isMem(Opcode op)
{
    return isLoad(op) || isStore(op) || op == Opcode::VLOAD;
}

bool
isFloatOp(Opcode op)
{
    switch (op) {
      case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
      case Opcode::FDIV: case Opcode::FSQRT: case Opcode::FMIN:
      case Opcode::FMAX: case Opcode::FMADD: case Opcode::FEQ:
      case Opcode::FLT: case Opcode::FLE: case Opcode::FCVT_WS:
      case Opcode::FCVT_SW:
        return true;
      default:
        return false;
    }
}

bool
isSimd(Opcode op)
{
    return op >= Opcode::SIMD_LW && op <= Opcode::SIMD_REDSUM;
}

bool
isVectorCtl(Opcode op)
{
    switch (op) {
      case Opcode::VISSUE: case Opcode::VEND: case Opcode::DEVEC:
      case Opcode::VLOAD: case Opcode::FRAME_START: case Opcode::REMEM:
      case Opcode::PRED_EQ: case Opcode::PRED_NEQ:
        return true;
      default:
        return false;
    }
}

int
destReg(const Instruction &inst)
{
    switch (inst.op) {
      // No destination.
      case Opcode::NOP: case Opcode::SW: case Opcode::FSW:
      case Opcode::SIMD_SW:
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
      case Opcode::HALT: case Opcode::BARRIER: case Opcode::CSRW:
      case Opcode::VISSUE: case Opcode::VEND: case Opcode::DEVEC:
      case Opcode::VLOAD: case Opcode::REMEM:
      case Opcode::PRED_EQ: case Opcode::PRED_NEQ:
        return -1;
      default:
        break;
    }
    if (inst.rd == regZero)
        return -1;  // Writes to x0 are discarded.
    return inst.rd;
}

bool
writesIntReg(const Instruction &inst)
{
    int rd = destReg(inst);
    return rd >= intRegBase && rd < fpRegBase;
}

void
readRegs(const Instruction &i, std::vector<RegIdx> &out)
{
    out.clear();
    switch (i.op) {
      case Opcode::NOP: case Opcode::LUI: case Opcode::JAL:
      case Opcode::HALT: case Opcode::BARRIER: case Opcode::CSRR:
      case Opcode::VISSUE: case Opcode::VEND: case Opcode::DEVEC:
      case Opcode::REMEM: case Opcode::FRAME_START:
        return;
      case Opcode::CSRW: case Opcode::JALR:
      case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
      case Opcode::XORI: case Opcode::SLLI: case Opcode::SRLI:
      case Opcode::SRAI: case Opcode::SLTI:
      case Opcode::LW: case Opcode::FLW: case Opcode::SIMD_LW:
      case Opcode::FSQRT: case Opcode::FABS: case Opcode::FCVT_WS:
      case Opcode::FCVT_SW: case Opcode::FMV_XW: case Opcode::FMV_WX:
      case Opcode::SIMD_BCAST: case Opcode::SIMD_REDSUM:
        out.push_back(i.rs1);
        return;
      case Opcode::FMADD: case Opcode::SIMD_FMA:
        out.push_back(i.rs1);
        out.push_back(i.rs2);
        out.push_back(i.rs3);
        return;
      default:
        // Register-register ALU/FP/SIMD ops, branches, stores, vload,
        // predication: rs1 and rs2 (unused slots hold x0).
        out.push_back(i.rs1);
        out.push_back(i.rs2);
        return;
    }
}

int
fuLatency(Opcode op)
{
    return info(op).latency;
}

const char *
opcodeName(Opcode op)
{
    return info(op).name;
}

namespace
{

std::string
regName(RegIdx r)
{
    std::ostringstream os;
    if (r < fpRegBase)
        os << "x" << int(r);
    else if (r < simdRegBase)
        os << "f" << int(r - fpRegBase);
    else
        os << "v" << int(r - simdRegBase);
    return os.str();
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    os << opcodeName(inst.op);
    switch (inst.op) {
      case Opcode::NOP: case Opcode::HALT: case Opcode::BARRIER:
      case Opcode::VEND: case Opcode::REMEM:
        break;
      case Opcode::VISSUE: case Opcode::DEVEC:
        os << " @" << inst.imm;
        break;
      case Opcode::JAL:
        os << " " << regName(inst.rd) << ", @" << inst.imm;
        break;
      case Opcode::JALR:
        os << " " << regName(inst.rd) << ", " << regName(inst.rs1)
           << ", " << inst.imm;
        break;
      case Opcode::FRAME_START: case Opcode::CSRR:
        os << " " << regName(inst.rd);
        if (inst.op == Opcode::CSRR)
            os << ", csr" << int(inst.sub);
        break;
      case Opcode::CSRW:
        os << " csr" << int(inst.sub) << ", " << regName(inst.rs1);
        break;
      case Opcode::PRED_EQ: case Opcode::PRED_NEQ:
        os << " " << regName(inst.rs1) << ", " << regName(inst.rs2);
        break;
      case Opcode::VLOAD:
        os << " sp+" << regName(inst.rs2) << ", [" << regName(inst.rs1)
           << "], off=" << inst.imm << ", w=" << inst.imm2
           << ", var=" << int(inst.sub);
        break;
      case Opcode::LW: case Opcode::FLW: case Opcode::SIMD_LW:
        os << " " << regName(inst.rd) << ", " << inst.imm << "("
           << regName(inst.rs1) << ")";
        break;
      case Opcode::SW: case Opcode::FSW: case Opcode::SIMD_SW:
        os << " " << regName(inst.rs2) << ", " << inst.imm << "("
           << regName(inst.rs1) << ")";
        break;
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
        os << " " << regName(inst.rs1) << ", " << regName(inst.rs2)
           << ", @" << inst.imm;
        break;
      case Opcode::LUI:
        os << " " << regName(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::FMADD: case Opcode::SIMD_FMA:
        os << " " << regName(inst.rd) << ", " << regName(inst.rs1)
           << ", " << regName(inst.rs2) << ", " << regName(inst.rs3);
        break;
      default:
        os << " " << regName(inst.rd) << ", " << regName(inst.rs1);
        // Immediate-type ops print imm; register-type print rs2.
        switch (inst.op) {
          case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
          case Opcode::XORI: case Opcode::SLLI: case Opcode::SRLI:
          case Opcode::SRAI: case Opcode::SLTI:
            os << ", " << inst.imm;
            break;
          case Opcode::FSQRT: case Opcode::FCVT_WS: case Opcode::FCVT_SW:
          case Opcode::FMV_XW: case Opcode::FMV_WX: case Opcode::FABS:
          case Opcode::SIMD_BCAST: case Opcode::SIMD_REDSUM:
            break;
          default:
            os << ", " << regName(inst.rs2);
            break;
        }
        break;
    }
    return os.str();
}

Encoded
encode(const Instruction &inst)
{
    // imm2 travels in a 16-bit field and decode() sign-extends it, so
    // any value outside int16 range would round-trip to a different
    // instruction. No producer emits one (vload widths are bounded by
    // the cache line), so an overflow here is a programming error.
    if (inst.imm2 < -32768 || inst.imm2 > 32767)
        fatal("encode: imm2 ", inst.imm2,
              " does not fit the 16-bit field");
    Encoded e;
    e.w0 = (static_cast<std::uint32_t>(inst.op) << 24) |
           (static_cast<std::uint32_t>(inst.rd) << 16) |
           (static_cast<std::uint32_t>(inst.rs1) << 8) |
           static_cast<std::uint32_t>(inst.rs2);
    e.w1 = (static_cast<std::uint32_t>(inst.rs3) << 24) |
           (static_cast<std::uint32_t>(inst.sub) << 16) |
           (static_cast<std::uint32_t>(inst.imm2) & 0xffffu);
    e.w2 = static_cast<std::uint32_t>(inst.imm);
    return e;
}

Instruction
decode(const Encoded &bits)
{
    Instruction inst;
    auto opval = (bits.w0 >> 24) & 0xff;
    if (opval >= static_cast<std::uint32_t>(Opcode::NUM_OPCODES))
        fatal("decode: illegal opcode ", opval);
    inst.op = static_cast<Opcode>(opval);
    inst.rd = static_cast<RegIdx>((bits.w0 >> 16) & 0xff);
    inst.rs1 = static_cast<RegIdx>((bits.w0 >> 8) & 0xff);
    inst.rs2 = static_cast<RegIdx>(bits.w0 & 0xff);
    inst.rs3 = static_cast<RegIdx>((bits.w1 >> 24) & 0xff);
    inst.sub = static_cast<std::uint8_t>((bits.w1 >> 16) & 0xff);
    // Sign-extend the 16-bit imm2 field.
    inst.imm2 = static_cast<std::int16_t>(bits.w1 & 0xffffu);
    inst.imm = static_cast<std::int32_t>(bits.w2);
    return inst;
}

} // namespace rockcress
