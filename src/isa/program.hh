/**
 * @file
 * A program image: a flat sequence of decoded instructions addressed
 * by instruction index. The I-cache model maps indices to byte
 * addresses (4 bytes per instruction) for tag purposes.
 */

#ifndef ROCKCRESS_ISA_PROGRAM_HH
#define ROCKCRESS_ISA_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "isa/instr.hh"
#include "isa/manifest.hh"

namespace rockcress
{

/** An assembled program plus its named entry points. */
struct Program
{
    std::string name;
    std::vector<Instruction> code;
    std::map<std::string, int> symbols;  ///< Named entry points.
    /** Compiler-asserted vectorization metadata (may be empty). */
    VectorizationManifest manifest;

    /** Number of instructions. */
    int size() const { return static_cast<int>(code.size()); }

    /** Fetch by instruction index (bounds-checked). */
    const Instruction &at(int pc) const;

    /** Look up a named entry point; fatal if missing. */
    int entry(const std::string &symbol) const;

    /** Multi-line disassembly listing for debugging. */
    std::string listing() const;
};

} // namespace rockcress

#endif // ROCKCRESS_ISA_PROGRAM_HH
