/**
 * @file
 * The Rockcress instruction set: a RISC-like base ISA plus the
 * software-defined vector extension from Section 2 of the paper
 * (vconfig CSR, vissue/vend/devec, vload, frame_start/remem,
 * predication) and a fixed-width per-core SIMD (PCV) extension
 * standing in for the RISC-V "V" extension of Section 5.1.
 */

#ifndef ROCKCRESS_ISA_INSTR_HH
#define ROCKCRESS_ISA_INSTR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace rockcress
{

/** All operations understood by the tile pipeline and the GPU model. */
enum class Opcode : std::uint8_t
{
    NOP = 0,

    // Integer register-register.
    ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    MUL, MULH, DIV, REM,

    // Integer register-immediate.
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, LUI,

    // Control flow.
    BEQ, BNE, BLT, BGE, BLTU, BGEU, JAL, JALR,

    // Memory (word granularity; FLW/FSW move float registers).
    LW, SW, FLW, FSW,

    // Floating point.
    FADD, FSUB, FMUL, FDIV, FSQRT, FMIN, FMAX, FMADD,
    FEQ, FLT, FLE, FCVT_WS, FCVT_SW, FMV_XW, FMV_WX, FSGNJ, FABS,

    // System.
    HALT, BARRIER, CSRW, CSRR,

    // Software-defined vector extension (Section 2).
    VISSUE,       ///< Launch a microthread at instruction index imm.
    VEND,         ///< Terminate the current microthread.
    DEVEC,        ///< Disband the vector group; resume at PC imm.
    VLOAD,        ///< Wide vector load (see VloadVariant).
    FRAME_START,  ///< Stall until head frame ready; rd = frame byte base.
    REMEM,        ///< Free the head frame.
    PRED_EQ,      ///< flag = (rs1 == rs2); flag 0 squashes to nops.
    PRED_NEQ,     ///< flag = (rs1 != rs2).

    // Per-core SIMD (PCV), fixed width (default 4 words).
    SIMD_LW,      ///< vrd = simdWidth contiguous words at rs1 + imm.
    SIMD_SW,      ///< store vrs2 to rs1 + imm.
    SIMD_ADD, SIMD_SUB, SIMD_MUL,
    SIMD_FADD, SIMD_FSUB, SIMD_FMUL, SIMD_FMA,
    SIMD_BCAST,   ///< Broadcast scalar fp register rs1 into vrd lanes.
    SIMD_REDSUM,  ///< frd = horizontal float sum of vrs1.

    NUM_OPCODES
};

/** Where a vload's LLC line response is directed (Section 2.3.2). */
enum class VloadVariant : std::uint8_t
{
    Single = 0,  ///< Entire response to one vector core.
    Group = 1,   ///< Consecutive chunks to each core in the group.
    Self = 2,    ///< Entire response back to the requesting core.
};

/** Control/status registers. */
enum class Csr : std::uint8_t
{
    Vconfig = 1,   ///< Nonzero write enters vector mode; 0 exits.
    FrameCfg = 2,  ///< frame size (words) | num frames << 16.
    CoreId = 3,    ///< Read-only linear core id.
    NumCores = 4,  ///< Read-only total core count.
    GroupTid = 5,  ///< Thread id within the vector group (Section 2.1).
    GroupLen = 6,  ///< Number of vector cores in this core's group.
};

/**
 * Register name space: a flat index covering the integer, floating
 * point, and SIMD files so the scoreboard can treat them uniformly.
 */
constexpr RegIdx regZero = 0;           ///< x0, hardwired zero.
constexpr RegIdx intRegBase = 0;        ///< x0..x31 -> 0..31
constexpr RegIdx fpRegBase = 32;        ///< f0..f31 -> 32..63
constexpr RegIdx simdRegBase = 64;      ///< v0..v31 -> 64..95
constexpr int numArchRegs = 96;

/** Build a flat index for integer register n. */
constexpr RegIdx x(int n) { return static_cast<RegIdx>(intRegBase + n); }
/** Build a flat index for floating-point register n. */
constexpr RegIdx f(int n) { return static_cast<RegIdx>(fpRegBase + n); }
/** Build a flat index for SIMD vector register n. */
constexpr RegIdx v(int n) { return static_cast<RegIdx>(simdRegBase + n); }

/**
 * A decoded instruction.
 *
 * PCs and branch/jump targets are instruction indices into the
 * program image (the I-cache model converts to byte addresses).
 * For VLOAD: rs1 = global byte address, rs2 = destination scratchpad
 * byte offset, imm = base core offset within the group, imm2 = access
 * width in words per core, sub = VloadVariant.
 */
struct Instruction
{
    Opcode op = Opcode::NOP;
    RegIdx rd = 0;
    RegIdx rs1 = 0;
    RegIdx rs2 = 0;
    RegIdx rs3 = 0;            ///< Third source (FMADD/SIMD_FMA).
    std::int32_t imm = 0;      ///< Primary immediate / branch target.
    std::int32_t imm2 = 0;     ///< Secondary immediate (vload width).
    std::uint8_t sub = 0;      ///< Subfunction (vload variant, CSR id).

    bool operator==(const Instruction &) const = default;

    /** Checkpoint field visitor (sim/checkpoint.hh). */
    template <class Ar>
    void
    serializeFields(Ar &ar)
    {
        ar(op, rd, rs1, rs2, rs3, imm, imm2, sub);
    }
};

/** @name Static instruction properties. */
///@{
bool isBranch(Opcode op);       ///< Conditional branch or jump.
bool isCondBranch(Opcode op);
bool isLoad(Opcode op);         ///< LW/FLW/SIMD_LW (not VLOAD).
bool isStore(Opcode op);
bool isMem(Opcode op);
bool isFloatOp(Opcode op);      ///< Uses the FP ALU.
bool isSimd(Opcode op);
bool isVectorCtl(Opcode op);    ///< VISSUE/VEND/DEVEC/VLOAD/frames/pred.
bool writesIntReg(const Instruction &inst);
/** Destination register if any (flat index), else -1. */
int destReg(const Instruction &inst);
/**
 * Append the flat register indices `inst` reads to `out` (cleared
 * first; x0 reads included). Unused source slots hold x0 and are only
 * reported when the opcode actually reads that slot.
 */
void readRegs(const Instruction &inst, std::vector<RegIdx> &out);
/** Execution latency in cycles on the tile FUs (Table 1a). */
int fuLatency(Opcode op);
///@}

/** Mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** Human-readable disassembly of one instruction. */
std::string disassemble(const Instruction &inst);

/**
 * A packed machine encoding of one instruction (three 32-bit words).
 * The modeled fabric forwards decoded instructions directly; the
 * packed form exists to pin down a concrete binary format and to
 * exercise encode/decode round-trips in tests.
 */
struct Encoded
{
    std::uint32_t w0 = 0;  ///< op:8 rd:8 rs1:8 rs2:8
    std::uint32_t w1 = 0;  ///< rs3:8 sub:8 imm2(low 16)
    std::uint32_t w2 = 0;  ///< imm

    bool operator==(const Encoded &) const = default;
};

/** Pack an instruction into its binary encoding. */
Encoded encode(const Instruction &inst);

/** Inverse of encode(). */
Instruction decode(const Encoded &bits);

} // namespace rockcress

#endif // ROCKCRESS_ISA_INSTR_HH
