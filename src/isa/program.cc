#include "isa/program.hh"

#include <sstream>

#include "sim/log.hh"

namespace rockcress
{

const Instruction &
Program::at(int pc) const
{
    if (pc < 0 || pc >= size())
        fatal("program '", name, "': PC ", pc, " out of range [0, ",
              size(), ")");
    return code[static_cast<size_t>(pc)];
}

int
Program::entry(const std::string &symbol) const
{
    auto it = symbols.find(symbol);
    if (it == symbols.end())
        fatal("program '", name, "': no symbol '", symbol, "'");
    return it->second;
}

std::string
Program::listing() const
{
    std::ostringstream os;
    std::map<int, std::string> by_pc;
    for (const auto &[sym, pc] : symbols)
        by_pc[pc] += sym + ":\n";
    for (int pc = 0; pc < size(); ++pc) {
        auto it = by_pc.find(pc);
        if (it != by_pc.end())
            os << it->second;
        os << "  " << pc << ": "
           << disassemble(code[static_cast<size_t>(pc)]) << "\n";
    }
    return os.str();
}

} // namespace rockcress
