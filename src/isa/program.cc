#include "isa/program.hh"

#include <algorithm>
#include <sstream>

#include "sim/log.hh"

namespace rockcress
{

namespace
{

/** Edit distance for "did you mean" symbol suggestions. */
int
editDistance(const std::string &a, const std::string &b)
{
    std::vector<int> row(b.size() + 1);
    for (size_t j = 0; j <= b.size(); ++j)
        row[j] = static_cast<int>(j);
    for (size_t i = 1; i <= a.size(); ++i) {
        int diag = row[0];
        row[0] = static_cast<int>(i);
        for (size_t j = 1; j <= b.size(); ++j) {
            int cost = a[i - 1] == b[j - 1] ? 0 : 1;
            int next = std::min({row[j] + 1, row[j - 1] + 1,
                                 diag + cost});
            diag = row[j];
            row[j] = next;
        }
    }
    return row[b.size()];
}

} // namespace

const Instruction &
Program::at(int pc) const
{
    if (pc < 0 || pc >= size()) {
        std::ostringstream os;
        os << "program '" << name << "': PC " << pc
           << " out of range [0, " << size() << ")";
        // Name the symbol whose code the runaway PC left, so the
        // report points at a routine instead of a bare index.
        std::string sym;
        int best = -1;
        for (const auto &[s, spc] : symbols) {
            if (spc <= pc && spc > best) {
                best = spc;
                sym = s;
            }
        }
        if (!sym.empty()) {
            os << "; nearest preceding symbol '" << sym << "' at "
               << best;
        }
        if (size() > 0) {
            os << "; last instruction " << size() - 1 << ": "
               << disassemble(code.back());
        }
        fatal(os.str());
    }
    return code[static_cast<size_t>(pc)];
}

int
Program::entry(const std::string &symbol) const
{
    auto it = symbols.find(symbol);
    if (it == symbols.end()) {
        std::ostringstream os;
        os << "program '" << name << "': no symbol '" << symbol << "'";
        // Closest few known symbols by edit distance.
        std::vector<std::pair<int, std::string>> ranked;
        for (const auto &[s, pc] : symbols) {
            (void)pc;
            ranked.emplace_back(editDistance(symbol, s), s);
        }
        std::sort(ranked.begin(), ranked.end());
        if (!ranked.empty()) {
            os << "; known symbols:";
            size_t shown = std::min<size_t>(ranked.size(), 3);
            for (size_t k = 0; k < shown; ++k)
                os << (k ? ", '" : " '") << ranked[k].second << "'";
            if (ranked.size() > shown)
                os << ", ... (" << ranked.size() - shown << " more)";
        } else {
            os << " (the program defines no symbols)";
        }
        fatal(os.str());
    }
    return it->second;
}

std::string
Program::listing() const
{
    std::ostringstream os;
    std::map<int, std::string> by_pc;
    for (const auto &[sym, pc] : symbols)
        by_pc[pc] += sym + ":\n";
    for (int pc = 0; pc < size(); ++pc) {
        auto it = by_pc.find(pc);
        if (it != by_pc.end())
            os << it->second;
        os << "  " << pc << ": "
           << disassemble(code[static_cast<size_t>(pc)]) << "\n";
    }
    return os.str();
}

} // namespace rockcress
