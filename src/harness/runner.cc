#include "harness/runner.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <sstream>

#include "analysis/perfbound.hh"
#include "analysis/verifier.hh"
#include "gpu/gpu.hh"
#include "ref/cosim.hh"
#include "sim/checkpoint.hh"
#include "sim/log.hh"
#include "trace/aggregate.hh"

namespace rockcress
{

RunResult
runManycore(const std::string &bench, const std::string &config,
            const RunOverrides &overrides, TraceCapture *capture)
{
    RunResult r;
    r.bench = bench;
    r.config = config;

    if (!overrides.resumeFrom.empty() &&
        (overrides.cosim || overrides.trace)) {
        r.ok = false;
        r.error = "checkpoint: resumeFrom cannot be combined with "
                  "cosim or trace — those observers accumulate "
                  "history outside the machine state and cannot be "
                  "rebuilt from a snapshot in a new process (pause "
                  "and resume within one process via the Machine API "
                  "to keep them attached)";
        return r;
    }

    BenchConfig cfg = configByName(config);
    MachineParams params =
        machineFor(cfg, overrides.cols, overrides.rows);
    params.dramBytesPerCycle = overrides.dramBytesPerCycle;
    params.llcTotalBytes =
        overrides.llcBankBytes * static_cast<Addr>(params.numBanks());
    params.nocWidthWords = overrides.nocWidthWords;

    Machine machine(params);
    if (overrides.spSan) {
        for (CoreId c = 0; c < machine.numCores(); ++c)
            machine.spadOf(c).enableSanitizer();
    }
    std::unique_ptr<TraceSink> sink;
    if (overrides.trace) {
        TraceOptions topts;
        topts.startCycle = overrides.traceStartCycle;
        topts.maxEventsPerCategory = overrides.traceMaxEvents;
        sink = std::make_unique<TraceSink>(topts);
        machine.attachTrace(sink.get());
    }
    auto benchmark = makeBenchmark(bench);
    try {
        auto program = benchmark->prepare(machine, cfg);
        if (overrides.verify || overrides.equiv) {
            VerifyReport report = verifyProgram(*program, cfg, params);
            if (overrides.equiv) {
                r.equiv.checked = true;
                r.equiv.streams = report.equivStreams;
                r.equiv.proved = report.equivProved;
                for (const EquivFinding &f : report.equiv)
                    r.equiv.witnesses.push_back(f.message);
            }
            if (overrides.verify && !report.ok()) {
                r.ok = false;
                r.error = report.text(*program);
                return r;
            }
        }
        r.staticIpcBound = computePerfBound(*program, cfg, params).ipcBound;
        std::unique_ptr<CosimChecker> checker;
        if (overrides.cosim) {
            RefOptions ropts;
            ropts.strictLoads = overrides.cosimStrictLoads;
            checker = std::make_unique<CosimChecker>(machine, ropts);
            machine.attachCosim(checker.get());
        }
        machine.setNaiveTick(overrides.naiveTick);
        if (!overrides.resumeFrom.empty())
            restoreCheckpoint(machine,
                              readCheckpointFile(overrides.resumeFrom));
        std::string ckpt_dir = overrides.ckptDir;
        if (ckpt_dir.empty()) {
            const char *env = std::getenv("ROCKCRESS_CKPT_DIR");
            ckpt_dir = (env != nullptr && *env != '\0') ? env : ".";
        }
        std::string ckpt_tag = overrides.ckptTag.empty()
                                   ? bench + "_" + config
                                   : overrides.ckptTag;
        auto t0 = std::chrono::steady_clock::now();
        // Segmented run: pause at every checkpointEveryN boundary to
        // snapshot, and at stopAtCycle for good (a partial result).
        // With neither knob this is a single run() to completion.
        for (;;) {
            Cycle stop = overrides.stopAtCycle;
            if (overrides.checkpointEveryN != 0) {
                Cycle next = (machine.cycles() /
                                  overrides.checkpointEveryN +
                              1) *
                             overrides.checkpointEveryN;
                if (stop == 0 || next < stop)
                    stop = next;
            }
            r.cycles = machine.run(overrides.maxCycles, stop);
            if (machine.finished())
                break;
            // A pause landing on a checkpoint boundary still writes
            // the snapshot (a stopAtCycle segment ends with the file
            // its successor resumes from).
            if (overrides.checkpointEveryN != 0 &&
                machine.cycles() % overrides.checkpointEveryN == 0) {
                std::string path = ckpt_dir + "/" + ckpt_tag + "_c" +
                                   std::to_string(machine.cycles()) +
                                   ".rkcp";
                writeCheckpointFile(path,
                                    saveCheckpoint(machine, ckpt_tag));
                r.checkpoints.push_back(path);
            }
            if (overrides.stopAtCycle != 0 &&
                machine.cycles() >= overrides.stopAtCycle) {
                r.partial = true;
                break;
            }
        }
        auto t1 = std::chrono::steady_clock::now();
        r.diag.runSeconds =
            std::chrono::duration<double>(t1 - t0).count();
        r.diag.simTicks = machine.ticksExecuted();
        r.diag.simSkips = machine.ticksSkipped();
        if (sink)
            machine.flushTrace();
        if (checker && !r.partial) {
            machine.drainCosim();
            std::string div = checker->finish(machine.mem());
            if (!div.empty()) {
                r.ok = false;
                r.error = "cosim: " + div;
                return r;
            }
        }
        // A paused run's memory is mid-flight; the golden compare
        // belongs to the segment that reaches the halt.
        r.error = r.partial ? "" : benchmark->check(machine.mem());
        r.ok = r.error.empty();
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
        return r;
    }

    const StatRegistry &stats = machine.stats();
    r.icacheAccesses = stats.sumSuffix("icache.accesses");
    r.issued = stats.sumSuffix(".issued");
    r.coreCycles = stats.sumSuffix(".cycles");
    r.stallFrame = stats.sumSuffix(".stall_frame");
    r.stallInet = stats.sumSuffix(".stall_inet_input");
    r.stallBackpressure = stats.sumSuffix(".stall_backpressure");
    r.stallOther = stats.sumSuffix(".stall_other") +
                   stats.sumSuffix(".stall_dae");
    r.vloadBytes = stats.sumSuffix(".vload_words") * wordBytes;
    r.nocWordHops = stats.get("noc.word_hops");

    // The exclusive-attribution identity (Core::stallCycle): every
    // non-halted cycle lands in exactly one CPI-stack counter. Checked
    // on every run — traced or not — because the figures and the trace
    // reconciliation both build on it.
    if (r.ok) {
        for (CoreId c = 0; c < machine.numCores(); ++c) {
            std::string p = "core" + std::to_string(c) + ".";
            std::uint64_t cyc = stats.get(p + "cycles");
            std::uint64_t parts = stats.get(p + "issued") +
                                  stats.get(p + "stall_frame") +
                                  stats.get(p + "stall_inet_input") +
                                  stats.get(p + "stall_backpressure") +
                                  stats.get(p + "stall_other") +
                                  stats.get(p + "stall_dae");
            if (cyc != parts) {
                std::ostringstream os;
                os << "cpi identity: core " << c << " has " << cyc
                   << " cycles but " << parts << " attributed";
                r.ok = false;
                r.error = os.str();
                break;
            }
        }
    }

    // Frame sanitizer: any flagged access fails the run with the
    // attributed records (the dynamic leg of the race differential).
    r.spSanViolations = stats.sumSuffix(".san_violations");
    if (overrides.spSan && r.ok && r.spSanViolations > 0) {
        std::ostringstream san;
        san << "frame sanitizer: " << r.spSanViolations
            << " violation(s)";
        for (CoreId c = 0; c < machine.numCores(); ++c) {
            for (const SpadSanRecord &rec :
                 machine.spadOf(c).sanRecords()) {
                san << "\n  " << rec.str();
            }
        }
        r.ok = false;
        r.error = san.str();
    }

    std::uint64_t llc_accesses = 0, llc_misses = 0;
    for (int b = 0; b < params.numBanks(); ++b) {
        std::string p = "llc" + std::to_string(b) + ".";
        llc_accesses += stats.get(p + "accesses");
        llc_misses += stats.get(p + "misses");
    }
    r.llcMissRate = llc_accesses == 0
                        ? 0.0
                        : static_cast<double>(llc_misses) /
                              static_cast<double>(llc_accesses);

    r.energy = computeEnergy(stats, params.core.simdWidth);
    r.energyPj = r.energy.total();

    // Performance-bound lint: the certified static ceiling must
    // dominate every core's simulated IPC (a violation means the
    // bound derivation or the cycle model is broken, so it always
    // fails the run); with perfLint on, the run also fails when it
    // leaves almost the whole statically available issue rate unused.
    for (CoreId c = 0; c < machine.numCores(); ++c) {
        std::string p = "core" + std::to_string(c) + ".";
        std::uint64_t cyc = stats.get(p + "cycles");
        if (cyc == 0)
            continue;
        double ipc = static_cast<double>(stats.get(p + "issued")) /
                     static_cast<double>(cyc);
        r.measuredIpc = std::max(r.measuredIpc, ipc);
    }
    if (r.ok && r.staticIpcBound > 0) {
        std::ostringstream lint;
        if (r.measuredIpc > r.staticIpcBound + 1e-9) {
            lint << "perf-lint: simulated per-core IPC "
                 << r.measuredIpc << " exceeds the certified static "
                 << "bound " << r.staticIpcBound;
        } else if (overrides.perfLint && !r.partial &&
                   r.measuredIpc <
                       overrides.perfLintMinFraction * r.staticIpcBound) {
            lint << "perf-lint: simulated per-core IPC "
                 << r.measuredIpc << " is below "
                 << overrides.perfLintMinFraction
                 << " of the static bound " << r.staticIpcBound;
        }
        if (!lint.str().empty()) {
            r.ok = false;
            r.error = lint.str();
        }
    }

    // Traced run: summarize the capture and, on full coverage,
    // reconcile the trace-rebuilt CPI stack against the flat counters
    // — exactly, per core, since both observe the same attribution.
    if (sink) {
        TraceSummary &ts = r.trace;
        ts.enabled = true;
        ts.events = sink->recordedTotal();
        ts.dropped = sink->droppedTotal();
        ts.coreSpans = sink->recorded(TraceKind::CoreSpan);
        ts.frameEvents = sink->recorded(TraceKind::Frame);
        ts.nocLinkEvents = sink->recorded(TraceKind::NocLink);
        ts.inetHopEvents = sink->recorded(TraceKind::InetHop);
        ts.llcEvents = sink->recorded(TraceKind::LlcReq) +
                       sink->recorded(TraceKind::LlcResp);
        ts.fullCoverage = sink->fullCoverage();
        if (ts.fullCoverage) {
            TraceAggregate agg = aggregateTrace(*sink);
            CpiTotals want;
            want.cycles = r.coreCycles;
            want.issued = r.issued;
            want.stallFrame = r.stallFrame;
            want.stallInet = r.stallInet;
            want.stallBackpressure = r.stallBackpressure;
            want.stallOther = stats.sumSuffix(".stall_other");
            want.stallDae = stats.sumSuffix(".stall_dae");
            std::string diff = crossCheckCpi(agg, want);
            for (CoreId c = 0; diff.empty() && c < machine.numCores();
                 ++c) {
                std::string p = "core" + std::to_string(c) + ".";
                CpiStack wc;
                wc.busy = stats.get(p + "issued");
                wc.frame = stats.get(p + "stall_frame");
                wc.inetInput = stats.get(p + "stall_inet_input");
                wc.backpressure = stats.get(p + "stall_backpressure");
                wc.other = stats.get(p + "stall_other");
                wc.dae = stats.get(p + "stall_dae");
                CpiStack got;
                auto it = agg.perCore.find(c);
                if (it != agg.perCore.end())
                    got = it->second;
                if (!(got == wc)) {
                    std::ostringstream os;
                    os << "per-core stack of core " << c
                       << " diverges from its counters (trace "
                       << got.total() << " vs stats " << wc.total()
                       << " attributed cycles)";
                    diff = os.str();
                }
            }
            if (diff.empty()) {
                ts.cpiCrossChecked = true;
            } else if (r.ok) {
                r.ok = false;
                r.error = "trace cross-check: " + diff;
            }
        }
        if (capture != nullptr)
            capture->sink = std::move(sink);
    }

    // Per-hop inet statistics and expander-only CPI stacks.
    if (cfg.isVector()) {
        for (CoreId c = 0; c < machine.numCores(); ++c) {
            int hop = machine.groupHop(c);
            if (hop < 0)
                continue;
            std::string p = "core" + std::to_string(c) + ".";
            if (hop >= 1) {
                r.hopInetStalls[hop] +=
                    stats.get(p + "stall_inet_input");
                r.hopBackpressure[hop] +=
                    stats.get(p + "stall_backpressure");
                r.hopCycles[hop] += stats.get(p + "vector_cycles");
                r.vectorCycles += stats.get(p + "vector_cycles");
                r.frameStallVector += stats.get(p + "stall_frame");
            }
            if (hop == 1) {
                r.expCycles += stats.get(p + "cycles");
                r.expIssued += stats.get(p + "issued");
                r.expStallFrame += stats.get(p + "stall_frame");
                r.expStallInet += stats.get(p + "stall_inet_input");
                r.expStallOther += stats.get(p + "stall_other") +
                                   stats.get(p + "stall_backpressure");
            }
        }
    }
    return r;
}

RunResult
runGpu(const std::string &bench)
{
    RunResult r;
    r.bench = bench;
    r.config = "GPU";
    GpuMachine gpu;
    auto benchmark = makeBenchmark(bench);
    try {
        Heap heap(GpuParams{}.heapBytes);
        benchmark->setup(gpu.mem(), heap);
        GpuProgram program = benchmark->gpuProgram();
        if (program.dispatches.empty()) {
            r.error = "no GPU realization";
            return r;
        }
        r.cycles = gpu.run(program);
        r.error = benchmark->check(gpu.mem());
        r.ok = r.error.empty();
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
        return r;
    }
    return r;
}

const RunResult &
betterOf(const RunResult &a, const RunResult &b)
{
    if (!a.ok)
        return b;
    if (!b.ok)
        return a;
    return a.cycles <= b.cycles ? a : b;
}

} // namespace rockcress
