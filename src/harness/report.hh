/**
 * @file
 * Text-table reporting for the bench binaries: aligned columns,
 * numeric formatting, geometric and arithmetic means — the same rows
 * and series the paper's figures plot.
 */

#ifndef ROCKCRESS_HARNESS_REPORT_HH
#define ROCKCRESS_HARNESS_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace rockcress
{

/** A printable aligned table. */
class Report
{
  public:
    Report(std::string title, std::vector<std::string> columns);

    void row(std::vector<std::string> cells);

    /** Print with aligned columns. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/** Fixed-precision numeric cell. */
std::string fmt(double v, int precision = 2);

/** Geometric mean (values must be positive). */
double geomean(const std::vector<double> &values);

/** Arithmetic mean. */
double amean(const std::vector<double> &values);

} // namespace rockcress

#endif // ROCKCRESS_HARNESS_REPORT_HH
