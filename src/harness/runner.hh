/**
 * @file
 * Experiment harness: runs one benchmark under one configuration
 * (Table 3) on a freshly built machine, verifies the result against
 * the host reference, and extracts the statistics every figure
 * needs (cycles, I-cache accesses, CPI-stack components, LLC miss
 * rate, per-hop inet stalls, energy).
 */

#ifndef ROCKCRESS_HARNESS_RUNNER_HH
#define ROCKCRESS_HARNESS_RUNNER_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "energy/energy.hh"
#include "kernels/common.hh"
#include "trace/trace.hh"

namespace rockcress
{

/** Machine-level knobs the evaluation sweeps. */
struct RunOverrides
{
    int cols = 8;
    int rows = 8;
    double dramBytesPerCycle = 16.0;   ///< Fig. 13: 32.0 for 2xBW.
    Addr llcBankBytes = 16 * 1024;     ///< Fig. 17b: 32 kB.
    int nocWidthWords = 4;             ///< Fig. 17c: 1.
    /** Watchdog; 0 scales with the grid (Machine::run). */
    Cycle maxCycles = 0;
    /**
     * Escape hatch: simulate with the naive tick-everything kernel
     * instead of the quiescence-aware fast-tick scheduler. Both are
     * cycle-exact and produce byte-identical artifacts (DESIGN.md
     * S5i); this knob exists for differential testing and for
     * bisecting a suspected scheduler bug.
     */
    bool naiveTick = false;
    /**
     * Statically verify the assembled program before simulating and
     * fail the run on any finding. Off only for experiments that
     * deliberately run malformed programs (fault injection).
     */
    bool verify = true;
    /**
     * Surface the translation-validation verdict (analysis/equiv.hh)
     * in the run artifact: how many manifest streams were examined,
     * how many were proved equivalent, and the sorted counterexample
     * witnesses. The pass itself always runs as part of `verify`;
     * this knob only controls whether the verdict is recorded in the
     * RunResult (and serialized), keeping old artifacts byte-stable.
     */
    bool equiv = false;
    /**
     * Differential co-simulation: check every committed instruction
     * against the functional reference model (src/ref) and the final
     * memory image against its golden result. A divergence fails the
     * run with a structured report. Purely a checker — cycle counts
     * and statistics are unchanged.
     */
    bool cosim = false;
    /**
     * With cosim: compare global-load values against reference
     * memory. Disable for racy kernels (bfs), where only the address
     * is checked and the reference adopts the loaded value.
     */
    bool cosimStrictLoads = true;
    /**
     * Static performance-bound lint (analysis/perfbound.hh). The
     * certified IPC ceiling is always computed and enforced — a run
     * whose simulated per-core IPC exceeds it fails, because that can
     * only mean the bound derivation or the cycle model is broken.
     * With perfLint on, a run is additionally failed when its best
     * per-core IPC falls below `perfLintMinFraction` of the bound:
     * the schedule leaves almost all of the statically available
     * issue slots on the table, which is a performance regression the
     * figures would silently absorb.
     */
    bool perfLint = false;
    double perfLintMinFraction = 0.02;
    /**
     * Frame sanitizer (mem/scratchpad.hh): track a shadow state per
     * scratchpad frame-region word and fail the run on any double
     * fill, fill of a word being consumed, or consumption before
     * handover — the dynamic ground truth for the static race pass.
     */
    bool spSan = false;
    /**
     * Structured event tracing (src/trace): capture typed events —
     * core CPI spans, frame lifecycle, NoC link occupancy, inet hops,
     * LLC requests — into a per-run TraceSink. Purely an observer:
     * cycle counts, statistics, and run artifacts of untraced fields
     * are unchanged. A full-coverage trace is cross-checked exactly
     * against the flat CPI-stack counters before the run is reported
     * ok.
     */
    bool trace = false;
    /** Skip events before this cycle (trace sampling window). */
    Cycle traceStartCycle = 0;
    /** Per-category event capacity; beyond it events are dropped. */
    std::uint64_t traceMaxEvents = 16'777'216;

    /**
     * @name Checkpoint & resume (sim/checkpoint.hh). Pausing at
     * `stopAtCycle` returns a partial result (correctness checks are
     * deferred to the completing segment); `checkpointEveryN` writes a
     * framed snapshot file at every multiple of N cycles; `resumeFrom`
     * restores one such file into the freshly prepared machine before
     * running. A resumed run must be prepared identically (bench,
     * config, geometry) — restoreCheckpoint validates this against
     * the snapshot header and fails the run otherwise. resumeFrom is
     * rejected with cosim or trace: those observers accumulate
     * history outside the machine and cannot be rebuilt from a
     * snapshot in another process (in-process pause/resume via the
     * Machine API carries them across segments instead).
     */
    ///@{
    /** Pause the run before executing this cycle (0: run to halt). */
    Cycle stopAtCycle = 0;
    /** Write a checkpoint file every N cycles (0: never). */
    Cycle checkpointEveryN = 0;
    /** Checkpoint file to restore before running (empty: cold start). */
    std::string resumeFrom;
    /** Directory for written checkpoints; empty means
     * $ROCKCRESS_CKPT_DIR, falling back to the working directory. */
    std::string ckptDir;
    /** Filename stem for written checkpoints (default bench_config);
     * files are named `<tag>_c<cycle>.rkcp`. */
    std::string ckptTag;
    ///@}

    bool operator==(const RunOverrides &) const = default;
};

/** Everything the figures need from one run. */
struct RunResult
{
    std::string bench;
    std::string config;
    bool ok = false;
    std::string error;

    Cycle cycles = 0;
    double energyPj = 0;
    EnergyBreakdown energy;

    std::uint64_t icacheAccesses = 0;
    std::uint64_t issued = 0;
    std::uint64_t vloadBytes = 0;    ///< Bytes moved by wide loads.
    std::uint64_t nocWordHops = 0;   ///< Data NoC word-hops (traffic).

    // CPI-stack components summed over all cores. For vector
    // configurations the paper averages expander cores only
    // (Figure 13 caption); those sums are provided separately.
    std::uint64_t coreCycles = 0;
    std::uint64_t stallFrame = 0;
    std::uint64_t stallInet = 0;
    std::uint64_t stallBackpressure = 0;
    std::uint64_t stallOther = 0;

    std::uint64_t expCycles = 0;
    std::uint64_t expIssued = 0;
    std::uint64_t expStallFrame = 0;
    std::uint64_t expStallInet = 0;
    std::uint64_t expStallOther = 0;

    double llcMissRate = 0;

    // Per-hop inet characterization (Figure 15); hop 1 = expander.
    std::map<int, std::uint64_t> hopInetStalls;
    std::map<int, std::uint64_t> hopBackpressure;
    std::map<int, std::uint64_t> hopCycles;
    std::uint64_t vectorCycles = 0;
    std::uint64_t frameStallVector = 0;   ///< Frame stalls, vector cores.

    /** Certified static IPC ceiling for this (bench, config). */
    double staticIpcBound = 0;
    /** Best per-core simulated IPC (issued / non-halted cycles). */
    double measuredIpc = 0;

    /** Frame-sanitizer violations (0 unless RunOverrides::spSan). */
    std::uint64_t spSanViolations = 0;

    /**
     * True when RunOverrides::stopAtCycle paused the run before every
     * core halted. Partial results carry mid-run statistics and skip
     * the end-of-run correctness checks (golden memory compare, cosim
     * finish, perf-lint utilization floor); `cycles` is the pause
     * point.
     */
    bool partial = false;
    /** Checkpoint files written (RunOverrides::checkpointEveryN). */
    std::vector<std::string> checkpoints;

    /** Event-trace summary (all-zero unless RunOverrides::trace). */
    TraceSummary trace;

    /** Translation-validation verdict (unset unless
     * RunOverrides::equiv; the pass itself always runs under
     * `verify`). */
    struct EquivSummary
    {
        bool checked = false;  ///< RunOverrides::equiv was set.
        int streams = 0;       ///< Manifest streams examined.
        int proved = 0;        ///< Streams proved equivalent.
        /** Rendered witnesses, sorted by (routine, pc, lane). */
        std::vector<std::string> witnesses;

        bool operator==(const EquivSummary &) const = default;
    };
    EquivSummary equiv;

    /**
     * Scheduler diagnostics: kernel- and host-dependent by design, so
     * they are deliberately NOT serialized into run artifacts (see
     * exp/result_io.cc), excluded from result identity (the vacuous
     * operator== below keeps the RunResult determinism audits exact
     * on every simulation field), and only feed rc_perf's report.
     */
    struct KernelDiag
    {
        std::uint64_t simTicks = 0;   ///< Component ticks executed.
        std::uint64_t simSkips = 0;   ///< Component-cycles skipped.
        /** Wall-clock seconds inside Machine::run() alone. */
        double runSeconds = 0;

        bool operator==(const KernelDiag &) const { return true; }
    };
    KernelDiag diag;

    /** Field-wise (bit-identical) equality: determinism audits. */
    bool operator==(const RunResult &) const = default;
};

/** Out-param keeping a traced run's events alive for export. */
struct TraceCapture
{
    std::unique_ptr<TraceSink> sink;
};

/**
 * Run a benchmark under a Table 3 configuration on the manycore.
 * With overrides.trace, pass `capture` to receive the event sink
 * (otherwise events are discarded with the machine).
 */
RunResult runManycore(const std::string &bench, const std::string &config,
                      const RunOverrides &overrides = {},
                      TraceCapture *capture = nullptr);

/** Run a benchmark on the GPU model. */
RunResult runGpu(const std::string &bench);

/** Pick the faster of two results (the BEST_V selection rule). */
const RunResult &betterOf(const RunResult &a, const RunResult &b);

} // namespace rockcress

#endif // ROCKCRESS_HARNESS_RUNNER_HH
