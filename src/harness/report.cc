#include "harness/report.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace rockcress
{

Report::Report(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns))
{
}

void
Report::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Report::print(std::ostream &os) const
{
    std::vector<size_t> width(columns_.size(), 0);
    for (size_t i = 0; i < columns_.size(); ++i)
        width[i] = columns_[i].size();
    for (const auto &r : rows_) {
        for (size_t i = 0; i < r.size() && i < width.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    }
    os << "\n== " << title_ << " ==\n";
    auto line = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < columns_.size(); ++i) {
            std::string c = i < cells.size() ? cells[i] : "";
            os << std::left << std::setw(static_cast<int>(width[i]) + 2)
               << c;
        }
        os << "\n";
    };
    line(columns_);
    std::vector<std::string> dashes;
    for (size_t w : width)
        dashes.push_back(std::string(w, '-'));
    line(dashes);
    for (const auto &r : rows_)
        line(r);
}

std::string
fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0;
    double log_sum = 0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
amean(const std::vector<double> &values)
{
    if (values.empty())
        return 0;
    double sum = 0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace rockcress
