/**
 * @file
 * Machine-level parameters mirroring Table 1a plus the knobs the
 * evaluation sweeps (core count, DRAM bandwidth, LLC capacity, NoC
 * width, cache line size).
 */

#ifndef ROCKCRESS_MACHINE_PARAMS_HH
#define ROCKCRESS_MACHINE_PARAMS_HH

#include "core/core.hh"
#include "mem/llc.hh"

namespace rockcress
{

/** Full manycore machine configuration. */
struct MachineParams
{
    int cols = 8;                    ///< Tile grid columns.
    int rows = 8;                    ///< Tile grid rows (64 cores).
    int nocWidthWords = 4;           ///< On-Chip Net Width: 4 words.
    int inetQueueEntries = 2;        ///< inet Queue Entries: 2.
    Addr spadBytes = 4 * 1024;       ///< Spm Capacity: 4 kB.
    int frameCounters = 5;           ///< Five 10-bit frame counters.
    Addr llcTotalBytes = 256 * 1024; ///< LLC Capacity: 256 kB.
    int llcWays = 4;                 ///< LLC Ways: 4.
    Addr lineBytes = 64;             ///< Cache line size (LL: 1024).
    Cycle llcHitLatency = 1;         ///< LLC Hit Latency: 1 cycle.
    Cycle dramLatencyCycles = 60;    ///< DRAM Latency: 60 ns at 1 GHz.
    double dramBytesPerCycle = 16.0; ///< DRAM Bandwidth: 16 GB/s.
    Addr heapBytes = 64u * 1024 * 1024;
    CoreParams core;

    int numCores() const { return cols * rows; }
    int numBanks() const { return 2 * cols; }

    Addr
    llcBankBytes() const
    {
        return llcTotalBytes / static_cast<Addr>(numBanks());
    }
};

} // namespace rockcress

#endif // ROCKCRESS_MACHINE_PARAMS_HH
