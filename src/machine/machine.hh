/**
 * @file
 * The assembled manycore machine (Section 5.1): a serpentine-ordered
 * tile grid, LLC slices at the top and bottom of each mesh column,
 * per-slice DRAM channels, the data NoC, and the inet. Implements
 * CoreEnv: group formation/disband bookkeeping (the "software
 * runtime" that computes the paper's vconfig bitmasks) and the global
 * kernel barrier.
 *
 * Core ids follow a serpentine (boustrophedon) order so that
 * consecutive ids are always mesh neighbors; a vector group is any
 * range of consecutive core ids, and its inet chain hops are all
 * physical 1-cycle links.
 */

#ifndef ROCKCRESS_MACHINE_MACHINE_HH
#define ROCKCRESS_MACHINE_MACHINE_HH

#include <memory>
#include <vector>

#include "core/core.hh"
#include "core/env.hh"
#include "machine/params.hh"
#include "mem/dram.hh"
#include "mem/llc.hh"
#include "noc/inet.hh"
#include "noc/mesh.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"

namespace rockcress
{

/** A planned vector group: scalar first, then expander, then vectors. */
struct GroupPlan
{
    std::vector<CoreId> chain;
};

/** The full manycore system. */
class Machine : public CoreEnv, public Ticked
{
  public:
    explicit Machine(const MachineParams &params);

    /** @name Software configuration before running. */
    ///@{
    /** Load a program into one core at a named entry point. */
    void loadProgram(CoreId core, std::shared_ptr<const Program> program,
                     int entry_pc = 0);
    /** Load the same program into every core. */
    void loadAll(std::shared_ptr<const Program> program, int entry_pc = 0);
    /**
     * Register a vector group plan (the runtime computation of the
     * vconfig bitmask). chain[0] is the scalar core; the remaining
     * entries must be consecutive mesh neighbors.
     */
    void planGroup(const GroupPlan &plan);
    ///@}

    /**
     * Run until all cores halt. @return total cycles.
     * @param max_cycles Watchdog limit; 0 scales it with the grid
     * size (kWatchdogCyclesPerCore per tile), so small fuzz grids
     * trip as eagerly as the full 8x8 machine.
     * @param stop_at Pause the simulation before executing cycle
     * stop_at (0: run to completion). A paused machine checkpoints
     * and resumes transparently: calling run() again continues
     * exactly where the uninterrupted run would be.
     */
    Cycle run(Cycle max_cycles = 0, Cycle stop_at = 0);

    /** Did the last run() end because every core halted? */
    bool finished() const { return haltedCount_ >= numCores(); }

    /** Watchdog budget per tile when run() is passed max_cycles = 0. */
    static constexpr Cycle kWatchdogCyclesPerCore = 8'000'000;

    /**
     * Select the simulation kernel: false (default) is the
     * quiescence-aware fast-tick scheduler, true the naive
     * tick-everything oracle. Both produce byte-identical runs
     * (DESIGN.md S5i); the naive loop exists as the differential
     * baseline and escape hatch.
     */
    void setNaiveTick(bool naive) { sim_.setNaive(naive); }

    /** Fast-tick diagnostics (see Simulator). */
    std::uint64_t ticksExecuted() const { return sim_.ticksExecuted(); }
    std::uint64_t ticksSkipped() const { return sim_.ticksSkipped(); }

    void tick(Cycle now) override;
    Cycle nextTickAt(Cycle now) override;

    /** @name Accessors. */
    ///@{
    StatRegistry &stats() { return registry_; }
    const StatRegistry &stats() const { return registry_; }
    MainMemory &mem() { return *mem_; }
    const MainMemory &mem() const { return *mem_; }
    const MachineParams &params() const { return params_; }
    Core &core(CoreId c) { return *cores_.at(static_cast<size_t>(c)); }
    int numCores() const { return params_.numCores(); }
    Cycle cycles() const { return sim_.now(); }
    /** Grid coordinate of a core (serpentine order). */
    std::pair<int, int> coreCoord(CoreId c) const;
    /** Hop distance of a core from its group's scalar core (0 = scalar). */
    int groupHop(CoreId c) const;
    /** All registered group plans (for the reference model). */
    const std::vector<GroupPlan> &groupPlans() const { return plans_; }
    /** Program loaded into a core (null before loadProgram). */
    std::shared_ptr<const Program> programOf(CoreId c) const
    {
        return programs_.at(static_cast<size_t>(c));
    }
    /** Entry pc the core was loaded with. */
    int entryOf(CoreId c) const
    {
        return entries_.at(static_cast<size_t>(c));
    }
    ///@}

    /** @name Event tracing (see trace/trace.hh). */
    ///@{
    /**
     * Attach (or with null, detach) a trace sink on every traced
     * component — cores, scratchpads, the mesh, the inet, the LLC
     * banks — and point its clock at the simulator's cycle counter.
     */
    void attachTrace(TraceSink *sink);
    /**
     * After run(): emit every core's still-open CPI span (the final
     * span has no following cause-change to close it).
     */
    void flushTrace();
    ///@}

    /** @name Co-simulation (see core/commit.hh). */
    ///@{
    /** Attach (or with null, detach) a commit sink on every core. */
    void attachCosim(CommitSink *sink);
    /**
     * After run(): flush completed-but-uncommitted ROB entries of
     * every core to the sink (halt stops the clock mid-drain).
     */
    void drainCosim();
    ///@}

    /**
     * @name Checkpointing (sim/checkpoint.hh). save/restore walk
     * every component in tick order. restore() expects a machine
     * prepared exactly like the saved one — same params, programs,
     * group plans — which the free functions saveCheckpoint /
     * restoreCheckpoint validate via the framed header.
     */
    ///@{
    void save(SnapshotWriter &w);
    void restore(SnapshotReader &r);
    template <class Ar> void serializeFields(Ar &ar);
    ///@}

    /** @name CoreEnv implementation. */
    ///@{
    void sendMemReq(CoreId src, const MemReq &req) override;
    void sendSpadWrite(CoreId src, const SpadWrite &write) override;
    void groupJoin(CoreId core) override;
    bool groupFormed(CoreId core) const override;
    GroupLayoutPtr groupLayout(CoreId core) const override;
    int groupTid(CoreId core) const override;
    bool plannedAsScalar(CoreId core) const override;
    bool plannedAsExpander(CoreId core) const override;
    void leftGroup(CoreId core) override;
    void barrierArrive(CoreId core) override;
    bool barrierReleased(CoreId core) const override;
    void coreHalted(CoreId core) override;
    void frameWindowMoved(CoreId core) override;
    Scratchpad &spadOf(CoreId core) override;
    MainMemory &mainMem() override { return *mem_; }
    const AddrMap &addrMap() const override { return map_; }
    ///@}

  private:
    struct GroupState
    {
        GroupPlan plan;
        GroupLayoutPtr layout;
        int joined = 0;
        bool formed = false;
        int left = 0;
    };

    int tileNode(CoreId c) const;
    int bankNode(int bank) const;
    bool memIdle() const;

    MachineParams params_;
    StatRegistry registry_;
    AddrMap map_;
    std::unique_ptr<MainMemory> mem_;
    std::unique_ptr<Mesh> mesh_;
    std::unique_ptr<Inet> inet_;
    std::unique_ptr<Dram> dram_;
    std::vector<std::unique_ptr<Scratchpad>> spads_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<LlcBank>> banks_;
    Simulator sim_;

    // Group bookkeeping.
    std::vector<GroupState> groups_;
    std::vector<GroupPlan> plans_;   ///< Registration order.
    std::vector<int> groupOfCore_;   ///< -1 when unplanned.

    // Loaded software (kept for the reference model).
    std::vector<std::shared_ptr<const Program>> programs_;
    std::vector<int> entries_;

    // Global barrier.
    std::uint64_t barrierGen_ = 1;
    std::vector<std::uint64_t> arrivedGen_;  ///< 0 = not waiting.
    int arrivals_ = 0;

    /** Halted tiles, maintained via coreHalted (recounted at run()). */
    int haltedCount_ = 0;

    /** Re-arm every non-halted member of this core's group chain. */
    void wakeGroupChain(CoreId core);
};

} // namespace rockcress

#endif // ROCKCRESS_MACHINE_MACHINE_HH
