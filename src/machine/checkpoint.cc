/**
 * @file
 * Machine-level checkpoint API (sim/checkpoint.hh): framing the
 * serialized machine body with a validated header, the program
 * digest that ties a snapshot to the software it was taken under,
 * and the layout tripwires that turn "added a member, forgot the
 * serializer" into a compile error on the reference platform.
 */

#include <string>

#include "machine/machine.hh"
#include "sim/checkpoint.hh"

namespace rockcress
{

namespace
{

void
digestU64(std::uint64_t &h, std::uint64_t v)
{
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    h = fnv1a(b, sizeof(b), h);
}

} // namespace

std::uint64_t
machineProgramDigest(const Machine &m)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    digestU64(h, static_cast<std::uint64_t>(m.numCores()));
    for (CoreId c = 0; c < m.numCores(); ++c) {
        auto prog = m.programOf(c);
        digestU64(h, prog != nullptr ? 1 : 0);
        if (prog == nullptr)
            continue;
        digestU64(h, static_cast<std::uint64_t>(m.entryOf(c)));
        digestU64(h, static_cast<std::uint64_t>(prog->size()));
        for (const Instruction &inst : prog->code) {
            Encoded e = encode(inst);
            digestU64(h, e.w0);
            digestU64(h, e.w1);
            digestU64(h, e.w2);
        }
    }
    const auto &plans = m.groupPlans();
    digestU64(h, plans.size());
    for (const GroupPlan &p : plans) {
        digestU64(h, p.chain.size());
        for (CoreId c : p.chain)
            digestU64(h, static_cast<std::uint64_t>(c));
    }
    return h;
}

std::vector<std::uint8_t>
saveCheckpoint(Machine &m, const std::string &tag)
{
    SnapshotWriter w;
    m.save(w);
    CheckpointMeta meta;
    meta.tag = tag;
    meta.programDigest = machineProgramDigest(m);
    meta.cols = static_cast<std::uint32_t>(m.params().cols);
    meta.rows = static_cast<std::uint32_t>(m.params().rows);
    meta.cycle = m.cycles();
    return frameCheckpoint(meta, w.bytes());
}

void
restoreCheckpoint(Machine &m, const std::vector<std::uint8_t> &bytes)
{
    CheckpointMeta meta;
    std::vector<std::uint8_t> body = checkpointBody(bytes, &meta);
    if (meta.cols != static_cast<std::uint32_t>(m.params().cols) ||
        meta.rows != static_cast<std::uint32_t>(m.params().rows)) {
        throw CheckpointError(
            "checkpoint: geometry mismatch (snapshot " +
            std::to_string(meta.cols) + "x" + std::to_string(meta.rows) +
            ", machine " + std::to_string(m.params().cols) + "x" +
            std::to_string(m.params().rows) + ")");
    }
    std::uint64_t digest = machineProgramDigest(m);
    if (meta.programDigest != digest) {
        throw CheckpointError(
            "checkpoint: program digest mismatch (snapshot was taken "
            "under different programs, entry points, or group plans)");
    }
    SnapshotReader r(body);
    m.restore(r);
    if (r.remaining() != 0) {
        throw CheckpointError(
            "checkpoint: " + std::to_string(r.remaining()) +
            " trailing bytes after the machine state (format drift?)");
    }
}

std::uint64_t
machineStateDigest(Machine &m)
{
    SnapshotWriter w;
    m.save(w);
    return fnv1a(w.bytes().data(), w.bytes().size());
}

// --- Layout tripwires --------------------------------------------------------
//
// Every class with a serializeFields() has its size pinned here for
// the reference platform (x86-64 libstdc++). Adding a member without
// visiting it in the serializer changes the size and fails this
// static_assert, forcing the author to update both together. Sizes
// are ABI facts of the platform, not of the build type; other
// platforms skip the check (the differential tests still cover them).
#if defined(__x86_64__) && defined(__GLIBCXX__) && \
    !defined(_GLIBCXX_DEBUG)
#define ROCKCRESS_PIN_SIZE(T, N) \
    static_assert(sizeof(T) == (N), \
                  #T " layout changed: update serializeFields() and " \
                  "re-pin the size in machine/checkpoint.cc")
ROCKCRESS_PIN_SIZE(Instruction, 20);
ROCKCRESS_PIN_SIZE(CommitRecord, 112);
ROCKCRESS_PIN_SIZE(MemReq, 72);
ROCKCRESS_PIN_SIZE(MemResp, 36);
ROCKCRESS_PIN_SIZE(SpadWrite, 20);
ROCKCRESS_PIN_SIZE(Packet, 144);
ROCKCRESS_PIN_SIZE(InetMsg, 28);
ROCKCRESS_PIN_SIZE(SpadSanRecord, 64);
ROCKCRESS_PIN_SIZE(Scratchpad, 184);
ROCKCRESS_PIN_SIZE(CacheTags, 96);
ROCKCRESS_PIN_SIZE(Dram, 56);
ROCKCRESS_PIN_SIZE(MainMemory, 32);
ROCKCRESS_PIN_SIZE(LlcBank, 464);
ROCKCRESS_PIN_SIZE(Inet, 152);
ROCKCRESS_PIN_SIZE(Mesh, 280);
ROCKCRESS_PIN_SIZE(Core, 3400);
ROCKCRESS_PIN_SIZE(Machine, 680);
#undef ROCKCRESS_PIN_SIZE
#endif

} // namespace rockcress
