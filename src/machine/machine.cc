#include "machine/machine.hh"

#include <cstdlib>
#include <sstream>

#include "sim/checkpoint.hh"
#include "sim/log.hh"

namespace rockcress
{

Machine::Machine(const MachineParams &params)
    : params_(params)
{
    int n = params_.numCores();
    map_.numCores = n;
    map_.lineBytes = params_.lineBytes;
    map_.numBanks = params_.numBanks();

    mem_ = std::make_unique<MainMemory>(params_.heapBytes);

    StatScope root(registry_, "");
    mesh_ = std::make_unique<Mesh>(params_.cols, params_.rows + 2,
                                   params_.nocWidthWords,
                                   root.nested("noc"));
    inet_ = std::make_unique<Inet>(n, params_.inetQueueEntries,
                                   root.nested("inet"));
    dram_ = std::make_unique<Dram>(params_.numBanks(),
                                   params_.dramBytesPerCycle,
                                   params_.dramLatencyCycles,
                                   root.nested("dram"));

    groupOfCore_.assign(static_cast<size_t>(n), -1);
    arrivedGen_.assign(static_cast<size_t>(n), 0);
    programs_.assign(static_cast<size_t>(n), nullptr);
    entries_.assign(static_cast<size_t>(n), 0);

    // Tiles.
    for (CoreId c = 0; c < n; ++c) {
        std::ostringstream name;
        name << "core" << c << ".";
        StatScope scope(registry_, name.str());
        spads_.push_back(std::make_unique<Scratchpad>(
            c, params_.spadBytes, params_.frameCounters,
            scope.nested("spad")));
        cores_.push_back(std::make_unique<Core>(
            c, params_.core, *this, *spads_.back(), *inet_, scope));
        Core *core = cores_.back().get();
        // The sink wrapper re-arms the core only when the delivery is
        // actionable (a load completion or a head-frame-ready edge);
        // intermediate frame-fill words cannot unblock a sleeping
        // core, and suppressing those wakes is what lets frame-armed
        // consumers sleep through a whole fill.
        mesh_->setSink(tileNode(c), [this, core](const Packet &pkt) {
            if (core->receive(pkt))
                sim_.wake(core);
        });
    }

    // LLC banks.
    LlcParams llc;
    llc.capacityBytes = params_.llcBankBytes();
    llc.ways = params_.llcWays;
    llc.lineBytes = params_.lineBytes;
    llc.hitLatency = params_.llcHitLatency;
    std::vector<int> core_nodes;
    for (CoreId c = 0; c < n; ++c)
        core_nodes.push_back(tileNode(c));
    for (int b = 0; b < params_.numBanks(); ++b) {
        std::ostringstream name;
        name << "llc" << b << ".";
        StatScope scope(registry_, name.str());
        banks_.push_back(std::make_unique<LlcBank>(
            b, bankNode(b), llc, *mesh_, *dram_, *mem_, map_, core_nodes,
            scope));
        LlcBank *bank = banks_.back().get();
        mesh_->setSink(bankNode(b), [this, bank](const Packet &pkt) {
            bank->receive(pkt);
            sim_.wake(bank);
        });
    }

    // Fast-tick wakeups for the NoCs: a send re-arms the network, a
    // delivery or pop re-arms the affected endpoint cores.
    mesh_->setWakeSelf([this] { sim_.wake(mesh_.get()); });
    inet_->setWake(
        [this] { sim_.wake(inet_.get()); },
        [this](CoreId c) {
            sim_.wake(cores_.at(static_cast<size_t>(c)).get());
        });

    // Tick order: cores, inet, mesh, LLCs, then machine bookkeeping.
    for (auto &core : cores_)
        sim_.add(core.get());
    sim_.add(inet_.get());
    sim_.add(mesh_.get());
    for (auto &bank : banks_)
        sim_.add(bank.get());
    sim_.add(this);
}

std::pair<int, int>
Machine::coreCoord(CoreId c) const
{
    int y = c / params_.cols;
    int in_row = c % params_.cols;
    int x = (y % 2 == 0) ? in_row : params_.cols - 1 - in_row;
    return {x, y};
}

int
Machine::tileNode(CoreId c) const
{
    auto [x, y] = coreCoord(c);
    return mesh_->nodeId(x, y + 1);  // Row 0 is the top LLC row.
}

int
Machine::bankNode(int bank) const
{
    int x = bank % params_.cols;
    int y = bank < params_.cols ? 0 : params_.rows + 1;
    return mesh_->nodeId(x, y);
}

void
Machine::loadProgram(CoreId core, std::shared_ptr<const Program> program,
                     int entry_pc)
{
    programs_.at(static_cast<size_t>(core)) = program;
    entries_.at(static_cast<size_t>(core)) = entry_pc;
    cores_.at(static_cast<size_t>(core))
        ->setProgram(std::move(program), entry_pc);
}

void
Machine::loadAll(std::shared_ptr<const Program> program, int entry_pc)
{
    for (CoreId c = 0; c < numCores(); ++c)
        loadProgram(c, program, entry_pc);
}

void
Machine::attachCosim(CommitSink *sink)
{
    for (auto &core : cores_)
        core->attachCosim(sink);
}

void
Machine::drainCosim()
{
    for (auto &core : cores_)
        core->drainCosim(sim_.now());
}

void
Machine::attachTrace(TraceSink *sink)
{
    if (sink != nullptr)
        sink->setClock(sim_.nowPtr());
    for (auto &core : cores_)
        core->setTrace(sink);
    for (auto &spad : spads_)
        spad->setTrace(sink);
    mesh_->setTrace(sink);
    inet_->setTrace(sink);
    for (auto &bank : banks_)
        bank->setTrace(sink);
}

void
Machine::flushTrace()
{
    for (auto &core : cores_)
        core->flushTraceSpan();
}

void
Machine::planGroup(const GroupPlan &plan)
{
    if (plan.chain.size() < 2)
        fatal("machine: a vector group needs a scalar and >= 1 vector "
              "core");
    GroupState state;
    state.plan = plan;
    auto layout = std::make_shared<GroupLayout>();
    layout->scalar = plan.chain[0];
    layout->vectorCores.assign(plan.chain.begin() + 1, plan.chain.end());
    state.layout = layout;
    int gid = static_cast<int>(groups_.size());
    for (CoreId c : plan.chain) {
        if (groupOfCore_.at(static_cast<size_t>(c)) != -1)
            fatal("machine: core ", c, " in two group plans");
        groupOfCore_[static_cast<size_t>(c)] = gid;
    }
    // Every chain hop must be a physical mesh neighbor.
    for (size_t i = 0; i + 1 < plan.chain.size(); ++i) {
        auto [ax, ay] = coreCoord(plan.chain[i]);
        auto [bx, by] = coreCoord(plan.chain[i + 1]);
        if (std::abs(ax - bx) + std::abs(ay - by) != 1)
            fatal("machine: group chain hop ", plan.chain[i], " -> ",
                  plan.chain[i + 1], " is not a mesh neighbor");
    }
    groups_.push_back(std::move(state));
    plans_.push_back(plan);
}

Cycle
Machine::run(Cycle max_cycles, Cycle stop_at)
{
    if (max_cycles == 0)
        max_cycles = kWatchdogCyclesPerCore *
                     static_cast<Cycle>(numCores());
    // setProgram clears halted_ without an env callback; recount so a
    // reloaded machine can run again.
    haltedCount_ = 0;
    for (const auto &core : cores_) {
        if (core->halted())
            ++haltedCount_;
    }
    return sim_.run([this] { return haltedCount_ >= numCores(); },
                    max_cycles, stop_at);
}

// --- Checkpointing -----------------------------------------------------------

template <class Ar>
void
Machine::serializeFields(Ar &ar)
{
    // Components in tick order, then the machine's own bookkeeping.
    for (auto &core : cores_)
        ar(*core);
    for (auto &spad : spads_)
        ar(*spad);
    ar(*inet_);
    if constexpr (Ar::isReader)
        mesh_->restore(ar);
    else
        mesh_->save(ar);
    for (auto &bank : banks_)
        ar(*bank);
    ar(*dram_, *mem_, registry_);

    // Group formation progress. Plans and layouts are configuration
    // (rebuilt by replaying planGroup before restore); the per-group
    // counters are run state.
    for (auto &g : groups_)
        ar(g.joined, g.formed, g.left);
    ar(barrierGen_, arrivedGen_, arrivals_);

    Cycle now = sim_.now();
    ar(now);
    if constexpr (Ar::isReader) {
        sim_.restoreNow(now);
        // finished() must be valid immediately after a restore; run()
        // recounts again on entry.
        haltedCount_ = 0;
        for (const auto &core : cores_) {
            if (core->halted())
                ++haltedCount_;
        }
    }
}

template void Machine::serializeFields<SnapshotWriter>(SnapshotWriter &);
template void Machine::serializeFields<SnapshotReader>(SnapshotReader &);

void
Machine::save(SnapshotWriter &w)
{
    serializeFields(w);
}

void
Machine::restore(SnapshotReader &r)
{
    serializeFields(r);
}

bool
Machine::memIdle() const
{
    if (!mesh_->idle())
        return false;
    for (const auto &bank : banks_) {
        if (!bank->idle())
            return false;
    }
    return dram_->idle(sim_.now());
}

void
Machine::tick(Cycle now)
{
    (void)now;
    // Release the barrier when every live core has arrived and the
    // memory system has drained (gives kernels store-drain semantics).
    int alive = numCores() - haltedCount_;
    if (alive > 0 && arrivals_ >= alive && memIdle()) {
        ++barrierGen_;
        arrivals_ = 0;
        // Waiters observe the release next cycle (the machine ticks
        // after the cores), exactly as under the naive kernel.
        for (auto &core : cores_)
            sim_.wake(core.get());
    }
}

Cycle
Machine::nextTickAt(Cycle now)
{
    // The machine's only per-cycle duty is polling barrier release;
    // with no arrivals pending its tick is a no-op.
    return arrivals_ > 0 ? now + 1 : kNeverTick;
}

// --- CoreEnv ------------------------------------------------------------------

void
Machine::sendMemReq(CoreId src, const MemReq &req)
{
    Addr probe = req.addr + static_cast<Addr>(req.wordLo) * wordBytes;
    if (!map_.isGlobal(probe))
        fatal("machine: memory request to non-global address ", probe);
    int bank = map_.bankOf(probe);
    Packet pkt;
    pkt.srcNode = tileNode(src);
    pkt.dstNode = bankNode(bank);
    pkt.kind = PacketKind::MemReqKind;
    pkt.req = req;
    pkt.words = req.op == MemOp::WriteWord ? 1 + req.sizeWords : 1;
    mesh_->send(std::move(pkt));
}

void
Machine::sendSpadWrite(CoreId src, const SpadWrite &write)
{
    Packet pkt;
    pkt.srcNode = tileNode(src);
    pkt.dstNode = tileNode(write.dst);
    pkt.kind = PacketKind::SpadWriteKind;
    pkt.spadWrite = write;
    pkt.words = 2;
    mesh_->send(std::move(pkt));
}

void
Machine::groupJoin(CoreId core)
{
    int gid = groupOfCore_.at(static_cast<size_t>(core));
    if (gid < 0)
        fatal("machine: core ", core,
              " wrote vconfig but has no group plan");
    GroupState &g = groups_[static_cast<size_t>(gid)];
    ++g.joined;
    if (g.joined == static_cast<int>(g.plan.chain.size())) {
        g.formed = true;
        inet_->configureChain(g.plan.chain);
        // Chain members sleeping on groupFormed() can proceed.
        wakeGroupChain(core);
    }
}

bool
Machine::groupFormed(CoreId core) const
{
    int gid = groupOfCore_.at(static_cast<size_t>(core));
    return gid >= 0 && groups_[static_cast<size_t>(gid)].formed;
}

GroupLayoutPtr
Machine::groupLayout(CoreId core) const
{
    int gid = groupOfCore_.at(static_cast<size_t>(core));
    if (gid < 0)
        return nullptr;
    const GroupState &g = groups_[static_cast<size_t>(gid)];
    return g.formed ? g.layout : nullptr;
}

int
Machine::groupTid(CoreId core) const
{
    int gid = groupOfCore_.at(static_cast<size_t>(core));
    if (gid < 0)
        return 0;
    const GroupState &g = groups_[static_cast<size_t>(gid)];
    for (size_t i = 0; i < g.layout->vectorCores.size(); ++i) {
        if (g.layout->vectorCores[i] == core)
            return static_cast<int>(i);
    }
    return 0;
}

int
Machine::groupHop(CoreId core) const
{
    int gid = groupOfCore_.at(static_cast<size_t>(core));
    if (gid < 0)
        return -1;
    const GroupState &g = groups_[static_cast<size_t>(gid)];
    for (size_t i = 0; i < g.plan.chain.size(); ++i) {
        if (g.plan.chain[i] == core)
            return static_cast<int>(i);
    }
    return -1;
}

bool
Machine::plannedAsScalar(CoreId core) const
{
    int gid = groupOfCore_.at(static_cast<size_t>(core));
    return gid >= 0 &&
           groups_[static_cast<size_t>(gid)].plan.chain[0] == core;
}

bool
Machine::plannedAsExpander(CoreId core) const
{
    int gid = groupOfCore_.at(static_cast<size_t>(core));
    return gid >= 0 &&
           groups_[static_cast<size_t>(gid)].plan.chain[1] == core;
}

void
Machine::leftGroup(CoreId core)
{
    int gid = groupOfCore_.at(static_cast<size_t>(core));
    if (gid < 0)
        panic("machine: leftGroup from unplanned core ", core);
    GroupState &g = groups_[static_cast<size_t>(gid)];
    ++g.left;
    if (g.left == static_cast<int>(g.plan.chain.size())) {
        // Fully disbanded: tear down the chain and allow re-formation
        // (groups reform at the next kernel).
        for (CoreId c : g.plan.chain)
            inet_->clearCore(c);
        g.joined = 0;
        g.formed = false;
        g.left = 0;
        // Members may be waiting to re-form at the next kernel.
        wakeGroupChain(core);
    }
}

void
Machine::barrierArrive(CoreId core)
{
    arrivedGen_.at(static_cast<size_t>(core)) = barrierGen_;
    ++arrivals_;
    // Arm barrier-release polling (the machine sleeps between
    // barriers; it ticks after the cores, so it sees this arrival in
    // the same cycle, like the naive kernel).
    sim_.wake(this);
}

void
Machine::coreHalted(CoreId core)
{
    (void)core;
    ++haltedCount_;
}

void
Machine::frameWindowMoved(CoreId core)
{
    // A REMEM (or frame reconfiguration) on this core widens the DAE
    // issue window its group's producers are gated on; they may be
    // asleep in a stall_frame span.
    wakeGroupChain(core);
}

void
Machine::wakeGroupChain(CoreId core)
{
    int gid = groupOfCore_.at(static_cast<size_t>(core));
    if (gid < 0)
        return;
    for (CoreId c : groups_[static_cast<size_t>(gid)].plan.chain)
        sim_.wake(cores_.at(static_cast<size_t>(c)).get());
}

bool
Machine::barrierReleased(CoreId core) const
{
    return arrivedGen_.at(static_cast<size_t>(core)) < barrierGen_;
}

Scratchpad &
Machine::spadOf(CoreId core)
{
    return *spads_.at(static_cast<size_t>(core));
}

} // namespace rockcress
